"""Unit tests for the native (Numba) codegen backend: emitted-source
snapshot, graceful fallbacks (numba absent, unsupported construct),
``auto`` threshold routing, and option plumbing.

Everything here runs without numba: ``REPRO_NATIVE_JIT=python`` executes
the emitted loop nests as plain Python, and the numba-absent cases
monkeypatch the import probe directly.
"""

import numpy as np
import pytest

import repro.backend.backends as backends_mod
import repro.backend.native as native_mod
from repro.backend.backends import (
    AUTO_NATIVE_MIN_PAIRS, get_backend, resolve_codegen_backend,
)
from repro.backend.cache import clear_caches
from repro.backend.codegen import CodegenSpec
from repro.backend.layout import Layout
from repro.backend.native import (
    NATIVE_MARKER, NativeBackend, emit_scalar_expr, native_available,
    native_mode,
)
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.dsl.errors import CompileError, SpecificationError
from repro.ir.nodes import IRCall, SymRef
from repro.observe import collect

from tests.backend.test_differential import _extract, make_problem


@pytest.fixture()
def sim_jit(monkeypatch):
    """Force the python-simulated JIT so the native path is exercised
    deterministically regardless of whether numba is installed."""
    monkeypatch.setenv("REPRO_NATIVE_JIT", "python")
    clear_caches()


@pytest.fixture()
def no_numba(monkeypatch):
    """A host with no native JIT at all: numba unimportable and no
    simulate override."""
    monkeypatch.delenv("REPRO_NATIVE_JIT", raising=False)
    monkeypatch.setattr(native_mod, "_import_numba", lambda: None)
    clear_caches()


def _knn_spec():
    return CodegenSpec(
        dim=3, layout=Layout.COLUMN, base="sqeuclidean", g_ir=SymRef("t"),
        monotone="increasing", outer_op=PortalOp.FORALL,
        inner_op=PortalOp.KARGMIN, k=3,
    )


# -- emitted-source snapshot -------------------------------------------------

KNN_NATIVE_SECTION = '''\
# --- native section (numba @njit per-pair kernels) ---

@_njit
def _native_base_case(QROW, RROW, best, best_idx, K, qs, qe, rs, re):
    for i in range(qs, qe):
        for j in range(rs, re):
            t = 0.0
            for _d in range(3):
                _df = QROW[i, _d] - RROW[j, _d]
                t += _df * _df
            v = t
            if v < best[i, K - 1]:
                _p = K - 1
                while _p > 0 and best[i, _p - 1] > v:
                    best[i, _p] = best[i, _p - 1]
                    best_idx[i, _p] = best_idx[i, _p - 1]
                    _p -= 1
                best[i, _p] = v
                best_idx[i, _p] = j


def native_base_case(qs, qe, rs, re):
    _native_base_case(QROW, RROW, best, best_idx, K, qs, qe, rs, re)

def _native_warm():
    _native_base_case(np.zeros((1, QROW.shape[1]), QROW.dtype), \
np.zeros((1, RROW.shape[1]), RROW.dtype), np.zeros((1, K), best.dtype), \
np.zeros((1, K), best_idx.dtype), K, 0, 0, 0, 0)

NATIVE_OVERRIDES = ('base_case',)
'''


def test_emitted_source_snapshot():
    """The k-NN base case lowers to exactly this fused loop nest — the
    sorted-filter insertion of section IV-F as scalar code."""
    source = NativeBackend().emit_source(_knn_spec())
    assert source[source.index(NATIVE_MARKER):] == KNN_NATIVE_SECTION


def test_native_source_extends_numpy_source():
    """The NumPy kernels stay in the artifact (they are the fallback and
    the non-overridden kernels); the native section is appended."""
    numpy_src = get_backend("numpy").emit_source(_knn_spec())
    native_src = NativeBackend().emit_source(_knn_spec())
    assert native_src.startswith(numpy_src.rstrip("\n"))


# -- scalar expression emission ----------------------------------------------

def test_scalar_expr_pow_and_calls():
    t = SymRef("t")
    assert emit_scalar_expr(IRCall("sqrt", (t,)), {"t": "t"}) == "np.sqrt(t)"
    assert emit_scalar_expr(
        IRCall("pow", (t, t)), {"t": "t"}) == "((t) ** (t))"


def test_scalar_expr_unsupported_call_raises():
    with pytest.raises(CompileError, match="cannot emit scalar call"):
        emit_scalar_expr(IRCall("erf", (SymRef("t"),)), {"t": "t"})


def test_supports_rejects_union():
    spec = _knn_spec()
    spec.inner_op = PortalOp.UNIONARG
    reason = NativeBackend().supports(spec)
    assert reason is not None and "UNIONARG" in reason


# -- availability & fallback -------------------------------------------------

def test_native_mode_knobs(monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE_JIT", "python")
    assert native_mode() == "python" and native_available()
    monkeypatch.setenv("REPRO_NATIVE_JIT", "off")
    assert native_mode() is None and not native_available()


def test_numba_absent_falls_back_cleanly(no_numba):
    """codegen='native' on a numba-less host must run on the NumPy
    kernels — counted, never fatal — and match numpy's output exactly
    (it *is* numpy's artifact)."""
    build, kind, opts = make_problem("kde", 101)
    ref = _extract(build().execute(codegen="numpy", cache=False, **opts),
                   kind)
    expr = build()
    with collect() as counters:
        out = expr.execute(codegen="native", cache=False, **opts)
    assert counters.as_dict()["backend.native.fallback"] == 1
    assert expr.stats()["codegen"] == "numpy"
    assert np.array_equal(_extract(out, kind), ref)


def test_unsupported_construct_falls_back(sim_jit):
    """UNIONARG appends to Python result lists — no scalar lowering —
    so the native backend emits the NumPy artifact, marked, and bind
    counts one fallback."""
    build, kind, opts = make_problem("range_search", 101)
    expr = build()
    with collect() as counters:
        expr.execute(codegen="native", cache=False, **opts)
    assert counters.as_dict()["backend.native.fallback"] == 1
    assert NATIVE_MARKER not in expr.generated_source()
    assert "native backend: numpy fallback" in expr.generated_source()


def test_supported_bind_counts_compile_time(sim_jit):
    build, kind, opts = make_problem("kde", 101)
    with collect() as counters:
        build().execute(codegen="native", cache=False, **opts)
    c = counters.as_dict()
    assert "backend.native.compile_s" in c
    assert "backend.native.fallback" not in c


# -- auto threshold routing --------------------------------------------------

def test_resolve_auto_threshold(sim_jit, monkeypatch):
    assert resolve_codegen_backend("numpy", 10**6, 10**6) == "numpy"
    assert resolve_codegen_backend("native", 1, 1) == "native"
    # below / at the pair threshold
    small = int(np.sqrt(AUTO_NATIVE_MIN_PAIRS)) - 1
    assert resolve_codegen_backend("auto", small, small) == "numpy"
    assert resolve_codegen_backend(
        "auto", AUTO_NATIVE_MIN_PAIRS, 1) == "native"
    with pytest.raises(SpecificationError):
        resolve_codegen_backend("llvm", 1, 1)


def test_resolve_auto_unavailable_stays_numpy(no_numba):
    with collect() as counters:
        assert resolve_codegen_backend("auto", 10**9, 10**9) == "numpy"
        # auto falling back is by design, not a counted failure…
        assert "backend.native.fallback" not in counters.as_dict()
        # …but an explicit native request is.
        assert resolve_codegen_backend("native", 1, 1) == "numpy"
        assert counters.as_dict()["backend.native.fallback"] == 1


def test_auto_routes_by_problem_size(sim_jit, monkeypatch):
    build, kind, opts = make_problem("kde", 101)
    expr = build()
    expr.execute(codegen="auto", cache=False, **opts)
    assert expr.stats()["codegen"] == "numpy"   # 28×33 pairs: tiny
    monkeypatch.setattr(backends_mod, "AUTO_NATIVE_MIN_PAIRS", 1)
    expr = build()
    expr.execute(codegen="auto", cache=False, **opts)
    assert expr.stats()["codegen"] == "native"


# -- option plumbing ---------------------------------------------------------

def test_backend_alias_routes_codegen(sim_jit):
    build, kind, opts = make_problem("kde", 101)
    expr = build()
    expr.execute(backend="native", cache=False, **opts)
    s = expr.stats()
    assert s["backend"] == "vectorized"
    assert s["codegen"] == "native"


def test_env_override_repro_codegen(sim_jit, monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN", "native")
    build, kind, opts = make_problem("kde", 101)
    expr = build()
    expr.execute(cache=False, **opts)
    assert expr.stats()["codegen"] == "native"
    # An explicit option always beats the environment.
    expr = build()
    expr.execute(codegen="numpy", cache=False, **opts)
    assert expr.stats()["codegen"] == "numpy"


def test_unknown_codegen_rejected():
    build, kind, opts = make_problem("kde", 101)
    with pytest.raises(SpecificationError, match="codegen"):
        build().execute(codegen="llvm", cache=False, **opts)


def test_get_backend_unknown_name():
    with pytest.raises(SpecificationError, match="unknown codegen backend"):
        get_backend("llvm")


def test_native_overrides_installed(sim_jit):
    """After a successful native bind the hot kernels really are the
    native wrappers, in both the kernel struct and the namespace (the
    emitted NumPy functions call them through their globals)."""
    build, kind, opts = make_problem("knn", 101)
    expr = build()
    expr.execute(codegen="native", cache=False, **opts)
    kk = expr.program.kernels
    assert kk.base_case.__name__ == "native_base_case"
    assert kk.namespace["base_case"] is kk.base_case
