"""Coverage for the remaining execute()/compile() option combinations."""

import itertools

import numpy as np
import pytest

from repro.dsl import (
    CompileError, PortalExpr, PortalFunc, PortalOp, Storage,
)
from repro.baselines import brute


@pytest.fixture
def rng():
    return np.random.default_rng(36)


def nn(rng, n=80, d=3):
    e = PortalExpr()
    e.addLayer(PortalOp.FORALL, Storage(rng.normal(size=(n, d)), name="q"))
    e.addLayer(PortalOp.ARGMIN, Storage(rng.normal(size=(n, d)), name="r"),
               PortalFunc.EUCLIDEAN)
    return e


class TestLayoutOverride:
    def test_forced_layouts_agree(self, rng):
        rng2 = np.random.default_rng(0)
        Q = rng2.normal(size=(60, 3))
        R = rng2.normal(size=(70, 3))

        def run(layout):
            e = PortalExpr()
            e.addLayer(PortalOp.FORALL, Storage(Q))
            e.addLayer(PortalOp.ARGMIN, Storage(R), PortalFunc.EUCLIDEAN)
            return e.execute(layout=layout, fastmath=False).values

        auto = run(None)
        col = run("column")
        row = run("row")
        assert np.allclose(auto, col)
        assert np.allclose(auto, row, atol=1e-6)

    def test_bad_layout_rejected(self, rng):
        with pytest.raises(CompileError, match="layout"):
            nn(rng).compile(layout="diagonal")


class TestSplitOption:
    def test_midpoint_split_same_answers(self, rng):
        rng2 = np.random.default_rng(1)
        Q = rng2.normal(size=(60, 3))
        R = rng2.normal(size=(70, 3))

        def run(split):
            e = PortalExpr()
            e.addLayer(PortalOp.FORALL, Storage(Q))
            e.addLayer(PortalOp.ARGMIN, Storage(R), PortalFunc.EUCLIDEAN)
            out = e.execute(split=split, fastmath=False)
            return out.values

        assert np.allclose(run("median"), run("midpoint"))

    def test_bad_split_rejected(self, rng):
        with pytest.raises(ValueError, match="split"):
            nn(rng).execute(split="golden-ratio")


class TestValidateAgainstBrute:
    def test_pruning_problem_exact(self, rng):
        e = nn(rng)
        e.execute(fastmath=False)
        assert e.program.validate_against_brute() < 1e-10

    def test_approx_problem_within_tau(self, rng):
        rng2 = np.random.default_rng(2)
        X = rng2.uniform(0, 5, size=(200, 3))
        s = Storage(X)
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, s)
        e.addLayer(PortalOp.SUM, s, PortalFunc.GAUSSIAN, bandwidth=0.4)
        e.execute(tau=1e-3, exclude_self=False, fastmath=False)
        assert e.program.validate_against_brute() <= 1e-3 * 200 + 1e-9

    def test_runs_before_output(self, rng):
        e = nn(rng)
        program = e.compile(fastmath=False)
        # validate before run(): it must run the program itself.
        assert program.validate_against_brute() < 1e-10


class TestStatsAccounting:
    def test_counts_are_consistent(self, rng):
        e = nn(rng, n=300)
        e.execute()
        st = e.program.stats
        assert st.visited == st.pruned + st.approximated + st.base_cases + (
            st.visited - st.pruned - st.approximated - st.base_cases
        )
        assert st.base_case_pairs <= 300 * 300

    def test_brute_stats(self, rng):
        e = nn(rng, n=100)
        e.execute(backend="brute")
        assert e.program.stats.base_case_pairs == 100 * 100


class TestExecutorTraversalCodegenMatrix:
    """Joint ``executor × traversal × codegen`` sweep (previously the
    three dimensions were only tested pairwise): every cell must agree
    with the serial/stack/numpy reference.  The full product is the slow
    tier; the fast tier keeps one representative cell per executor,
    engine and backend."""

    TRAVERSALS = ("stack", "batched", "bounded-batched")
    EXECUTORS = ("serial", "thread", "process")
    CODEGENS = ("numpy", "native")
    #: fast representatives: each executor, engine and codegen appears
    FAST_CELLS = (
        ("stack", "serial", "native"),
        ("batched", "thread", "numpy"),
        ("bounded-batched", "thread", "native"),
        ("batched", "process", "native"),
    )

    @pytest.fixture(autouse=True)
    def _native_sim(self, monkeypatch):
        from repro.backend.native import native_available

        if not native_available():
            monkeypatch.setenv("REPRO_NATIVE_JIT", "python")

    @staticmethod
    def _knn():
        rng = np.random.default_rng(77)
        Q = rng.normal(size=(90, 3))
        R = rng.normal(size=(110, 3))

        def build():
            e = PortalExpr()
            e.addLayer(PortalOp.FORALL, Storage(Q, name="q"))
            e.addLayer((PortalOp.KARGMIN, 3), Storage(R, name="r"),
                       PortalFunc.EUCLIDEAN)
            return e

        return build

    @classmethod
    def _run(cls, build, traversal, executor, codegen):
        kwargs = dict(traversal=traversal, codegen=codegen, fastmath=False,
                      leaf_size=16)
        if executor != "serial":
            kwargs.update(parallel=True, workers=2, min_tasks=4,
                          executor=executor)
        return build().execute(**kwargs)

    def _check_cell(self, traversal, executor, codegen):
        build = self._knn()
        ref = self._run(build, "stack", "serial", "numpy")
        got = self._run(build, traversal, executor, codegen)
        assert np.array_equal(np.asarray(got.indices),
                              np.asarray(ref.indices))

    @pytest.mark.parametrize("traversal,executor,codegen", FAST_CELLS)
    def test_matrix_fast(self, traversal, executor, codegen):
        self._check_cell(traversal, executor, codegen)

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "traversal,executor,codegen",
        list(itertools.product(TRAVERSALS, EXECUTORS, CODEGENS)),
    )
    def test_matrix_full(self, traversal, executor, codegen):
        self._check_cell(traversal, executor, codegen)


class TestMultilayerCLIIntrospection:
    def test_generated_source_placeholder(self, rng):
        from repro.dsl import Var, indicator, pow, sqrt

        X = Storage(rng.normal(size=(15, 2)))
        a, b, c = Var("a"), Var("b"), Var("c")
        k = (indicator(sqrt(pow(a - b, 2)) < 1.0)
             * indicator(sqrt(pow(b - c, 2)) < 1.0)
             * indicator(sqrt(pow(a - c, 2)) < 1.0))
        e = PortalExpr()
        e.addLayer(PortalOp.SUM, a, X)
        e.addLayer(PortalOp.SUM, b, X)
        e.addLayer(PortalOp.SUM, c, X, k)
        e.compile()
        assert "multi-layer" in e.generated_source()
        assert e.program.mode == "multilayer"
