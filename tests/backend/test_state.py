"""Tests for runtime accumulator state allocation and finalisation."""

import numpy as np
import pytest

from repro.backend.state import allocate_state
from repro.dsl.errors import CompileError
from repro.dsl.ops import PortalOp


class TestAllocation:
    def test_argmin(self):
        st = allocate_state(PortalOp.FORALL, PortalOp.ARGMIN, None, 10, 20)
        assert st.arrays["best"].shape == (10,)
        assert np.all(np.isinf(st.arrays["best"]))
        assert st.arrays["best_idx"].shape == (10,)

    def test_kargmin(self):
        st = allocate_state(PortalOp.FORALL, PortalOp.KARGMIN, 3, 10, 20)
        assert st.arrays["best"].shape == (10, 3)
        assert st.arrays["best_idx"].shape == (10, 3)

    def test_sum(self):
        st = allocate_state(PortalOp.FORALL, PortalOp.SUM, None, 10, 20)
        assert np.all(st.arrays["acc"] == 0.0)

    def test_prod_identity(self):
        st = allocate_state(PortalOp.FORALL, PortalOp.PROD, None, 10, 20)
        assert np.all(st.arrays["acc"] == 1.0)

    def test_max_identity(self):
        st = allocate_state(PortalOp.FORALL, PortalOp.MAX, None, 10, 20)
        assert np.all(np.isneginf(st.arrays["best"]))

    def test_union_lists(self):
        st = allocate_state(PortalOp.FORALL, PortalOp.UNIONARG, None, 10, 20)
        assert len(st.lists) == 10

    def test_inner_forall_dense(self):
        st = allocate_state(PortalOp.FORALL, PortalOp.FORALL, None, 10, 20)
        assert st.arrays["dense"].shape == (10, 20)

    def test_unsupported_rejected(self):
        class Fake:
            name = "FAKE"

        with pytest.raises(CompileError):
            allocate_state(PortalOp.FORALL, Fake(), None, 5, 5)


class TestFinalize:
    def test_permutation_mapping(self):
        st = allocate_state(PortalOp.FORALL, PortalOp.ARGMIN, None, 4, 4)
        st.arrays["best"][:] = [10.0, 11.0, 12.0, 13.0]
        st.arrays["best_idx"][:] = [0, 1, 2, 3]
        qperm = np.array([2, 0, 3, 1])  # permuted[i] = original[qperm[i]]
        rperm = np.array([1, 3, 0, 2])
        out = st.finalize(qperm, rperm)
        # original index 2 sits at permuted position 0 -> value 10.
        assert out.values[2] == 10.0
        assert out.indices[2] == rperm[0]

    def test_outer_sum_scalar(self):
        st = allocate_state(PortalOp.SUM, PortalOp.SUM, None, 3, 5)
        st.arrays["acc"][:] = [1.0, 2.0, 3.0]
        out = st.finalize(np.arange(3), None)
        assert out.scalar == 6.0

    def test_outer_max_scalar(self):
        st = allocate_state(PortalOp.MAX, PortalOp.MIN, None, 3, 5)
        st.arrays["best"][:] = [1.0, 5.0, 3.0]
        out = st.finalize(np.arange(3), None)
        assert out.scalar == 5.0

    def test_modifier_applied_before_outer_reduce(self):
        st = allocate_state(PortalOp.SUM, PortalOp.SUM, None, 3, 5,
                            modifier=np.log)
        st.arrays["acc"][:] = [np.e, np.e, np.e]
        out = st.finalize(np.arange(3), None)
        assert out.scalar == pytest.approx(3.0)

    def test_union_lists_mapped(self):
        st = allocate_state(PortalOp.FORALL, PortalOp.UNIONARG, None, 2, 4)
        st.lists[0].append(np.array([0, 1]))
        st.lists[1].append(np.array([2]))
        qperm = np.array([1, 0])
        rperm = np.array([3, 2, 1, 0])
        out = st.finalize(qperm, rperm)
        # original query 1 was permuted position 0 -> refs {0,1} -> rperm {3,2}
        assert sorted(out.indices[1].tolist()) == [2, 3]
        assert sorted(out.indices[0].tolist()) == [1]

    def test_empty_union_entries(self):
        st = allocate_state(PortalOp.FORALL, PortalOp.UNIONARG, None, 2, 4)
        out = st.finalize(np.arange(2), np.arange(4))
        assert all(len(ix) == 0 for ix in out.indices)

    def test_repr(self):
        st = allocate_state(PortalOp.SUM, PortalOp.SUM, None, 2, 2)
        st.arrays["acc"][:] = 1.0
        out = st.finalize(np.arange(2), None)
        assert "scalar" in repr(out)
