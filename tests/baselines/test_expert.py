"""Tests: the hand-optimised expert baselines are correct (they share the
ground truth with the brute-force reference)."""

import numpy as np
import pytest

from repro.baselines import brute
from repro.baselines.expert import (
    expert_em, expert_emst, expert_hausdorff, expert_kde, expert_knn,
    expert_range_count, expert_range_search,
)


@pytest.fixture
def rng():
    return np.random.default_rng(24)


class TestExpertKnn:
    def test_vs_brute(self, small_qr):
        Q, R = small_qr
        d, i = expert_knn(Q, R, k=3)
        db, _ = brute.brute_knn(Q, R, k=3)
        assert np.allclose(d, db, atol=1e-6)

    def test_self_join(self, rng):
        X = rng.normal(size=(80, 3))
        d, i = expert_knn(X, k=1)
        assert np.all(i != np.arange(80))
        db, _ = brute.brute_knn(X, X, k=1, exclude_self=True)
        assert np.allclose(d, db, atol=1e-6)


class TestExpertKde:
    def test_exact_mode(self, small_qr):
        Q, R = small_qr
        out = expert_kde(Q, R, bandwidth=1.0, tau=0.0)
        assert np.allclose(out, brute.brute_kde(Q, R, 1.0))

    def test_tau_bound(self, small_qr):
        Q, R = small_qr
        out = expert_kde(Q, R, bandwidth=1.0, tau=1e-3)
        exact = brute.brute_kde(Q, R, 1.0)
        assert np.abs(out - exact).max() <= 1e-3 * len(R)


class TestExpertRange:
    def test_count(self, small_qr):
        Q, R = small_qr
        got = expert_range_count(Q, R, h=0.8)
        assert np.array_equal(got, brute.brute_range_count(Q, R, 0.8))

    def test_count_self_join(self, rng):
        X = rng.normal(size=(90, 3))
        got = expert_range_count(X, h=1.0)
        assert np.array_equal(got,
                              brute.brute_range_count(X, X, 1.0,
                                                      exclude_self=True))

    def test_search(self, small_qr):
        Q, R = small_qr
        got = expert_range_search(Q, R, h=0.8)
        expected = brute.brute_range_search(Q, R, 0.8)
        for g, e in zip(got, expected):
            assert np.array_equal(g, np.sort(e))


class TestExpertHausdorffEmstEm:
    def test_hausdorff(self, rng):
        from scipy.spatial.distance import directed_hausdorff as sdh

        A = rng.normal(size=(100, 3))
        B = rng.normal(size=(110, 3))
        assert expert_hausdorff(A, B) == pytest.approx(sdh(A, B)[0], abs=1e-6)

    def test_emst(self, rng):
        from scipy.sparse.csgraph import minimum_spanning_tree
        from scipy.spatial.distance import pdist, squareform

        X = rng.normal(size=(150, 3))
        _, _, total = expert_emst(X)
        expected = float(minimum_spanning_tree(squareform(pdist(X))).sum())
        assert total == pytest.approx(expected, rel=1e-9)

    def test_em_ll_monotone(self, clustered_2d):
        X, _ = clustered_2d
        _, _, _, lls = expert_em(X, 2, max_iter=20)
        assert all(b >= a - 1e-6 * abs(a) for a, b in zip(lls, lls[1:]))

    def test_em_matches_portal_em(self, clustered_2d):
        from repro.problems import em_fit

        X, _ = clustered_2d
        means_e, _, _, lls_e = expert_em(X, 2, max_iter=30)
        gmm = em_fit(X, 2, max_iter=30)
        # Same init scheme, same algorithm: final log-likelihoods agree.
        assert lls_e[-1] == pytest.approx(gmm.log_likelihoods_[-1], rel=1e-6)
