"""Tests: the library-style comparators (sklearn/MLPACK/FDPS shapes) give
correct answers — the benchmarks then measure their slowness honestly."""

import numpy as np
import pytest

from repro.baselines import (
    MlpackLikeNBC, brute, fdps_like_forces, sklearn_like_two_point,
)


@pytest.fixture
def rng():
    return np.random.default_rng(25)


class TestSklearnLike2PC:
    def test_correct_count(self, rng):
        X = rng.normal(size=(200, 3))
        assert sklearn_like_two_point(X, 0.6) == brute.brute_two_point(X, 0.6)

    def test_matches_portal(self, rng):
        from repro.problems import two_point_correlation

        X = rng.normal(size=(250, 3))
        assert sklearn_like_two_point(X, 0.5) == two_point_correlation(X, 0.5)


class TestMlpackLikeNBC:
    def test_correct_on_separable(self, rng):
        X = np.concatenate([rng.normal(-4, 1, (80, 3)),
                            rng.normal(4, 1, (80, 3))])
        y = np.array([0] * 80 + [1] * 80)
        clf = MlpackLikeNBC().fit(X, y)
        assert clf.score(X, y) > 0.98

    def test_agrees_with_portal(self, rng):
        from repro.problems import naive_bayes_fit

        X = np.concatenate([rng.normal(-2, 1, (100, 4)),
                            rng.normal(2, 1, (100, 4))])
        y = np.array([0] * 100 + [1] * 100)
        ours = naive_bayes_fit(X, y).predict(X)
        ref = MlpackLikeNBC().fit(X, y).predict(X)
        assert np.mean(ours == ref) > 0.99


class TestFdpsLikeBH:
    def test_theta_zero_exact(self, rng):
        pos = rng.normal(size=(150, 3))
        mass = rng.uniform(0.5, 2.0, 150)
        a = fdps_like_forces(pos, mass, theta=0.0)
        assert np.allclose(a, brute.brute_forces(pos, mass), rtol=1e-9)

    def test_matches_portal_bh_accuracy(self, rng):
        from repro.problems import barnes_hut_acceleration

        pos = rng.normal(size=(300, 3))
        mass = np.ones(300)
        exact = brute.brute_forces(pos, mass)
        a_f = fdps_like_forces(pos, mass, theta=0.4)
        a_p = barnes_hut_acceleration(pos, mass, theta=0.4)
        err_f = np.linalg.norm(a_f - exact) / np.linalg.norm(exact)
        err_p = np.linalg.norm(a_p - exact) / np.linalg.norm(exact)
        assert err_f < 0.05 and err_p < 0.05


class TestBruteInternals:
    def test_pairwise_sqdist_nonnegative(self, rng):
        Q = rng.normal(size=(50, 4)) * 100
        d2 = brute.pairwise_sqdist(Q, Q)
        assert (d2 >= 0).all()
        assert np.allclose(np.diag(d2), 0.0, atol=1e-8)

    def test_knn_recomputed_distances_exact(self):
        # Identical far-away points: cancellation-prone for the dot trick.
        X = np.full((6, 5), 18.374040649374773)
        d, _ = brute.brute_knn(X[:3], X, k=1)
        assert np.all(d == 0.0)

    def test_potential_matches_direct(self, rng):
        pos = rng.normal(size=(60, 3))
        mass = rng.uniform(1, 2, 60)
        phi = brute.brute_potential(pos, mass, eps=1e-3)
        diff = pos[:, None, :] - pos[None, :, :]
        r2 = np.einsum("ijk,ijk->ij", diff, diff) + 1e-6
        k = mass[None, :] / np.sqrt(r2)
        np.fill_diagonal(k, 0.0)
        assert np.allclose(phi, k.sum(axis=1))
