"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.backend.cache import clear_caches


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden IR dumps under tests/ir/golden/",
    )


@pytest.fixture(autouse=True)
def _isolated_caches():
    """Tests must be order-independent: the execution caches are
    process-global, so drop them around every test."""
    clear_caches()
    yield
    clear_caches()


@pytest.fixture(autouse=True)
def _verify_ir(monkeypatch):
    """Run the structural IR verifier after every pass in every compile
    the suite performs (benchmarks leave it off)."""
    monkeypatch.setenv("REPRO_VERIFY_IR", "1")


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_qr(rng):
    """A small (query, reference) pair in 3-D."""
    return rng.normal(size=(120, 3)), rng.normal(size=(150, 3))


@pytest.fixture
def small_highdim(rng):
    """A small (query, reference) pair in 12-D (row-major layout path)."""
    return rng.normal(size=(90, 12)), rng.normal(size=(110, 12))


@pytest.fixture
def clustered_2d(rng):
    """Two well-separated Gaussian clusters in 2-D, with labels."""
    a = rng.normal(loc=(-4.0, 0.0), scale=1.0, size=(80, 2))
    b = rng.normal(loc=(4.0, 0.0), scale=1.0, size=(80, 2))
    X = np.concatenate([a, b])
    y = np.array([0] * 80 + [1] * 80)
    return X, y
