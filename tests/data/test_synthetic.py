"""Tests for the synthetic dataset generators and the Table-II registry."""

import numpy as np
import pytest

from repro.data import DATASETS, load, synthetic, table2_rows
from repro.data.loaders import load_csv, save_csv


class TestGenerators:
    @pytest.mark.parametrize("name", list(DATASETS))
    def test_shape_matches_registry(self, name):
        info = DATASETS[name]
        X = load(name, 500)
        assert X.shape == (500, info.dim)

    @pytest.mark.parametrize("name", list(DATASETS))
    def test_deterministic(self, name):
        assert np.array_equal(load(name, 200, seed=7), load(name, 200, seed=7))

    @pytest.mark.parametrize("name", list(DATASETS))
    def test_seed_changes_data(self, name):
        assert not np.array_equal(load(name, 200, seed=1), load(name, 200, seed=2))

    @pytest.mark.parametrize("name", list(DATASETS))
    def test_finite(self, name):
        assert np.isfinite(load(name, 300)).all()

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load("MNIST")

    def test_default_sizes(self):
        X = load("Census")
        assert len(X) == DATASETS["Census"].default_n

    def test_elliptical_is_anisotropic(self):
        X = synthetic.elliptical(5000, seed=0)
        stds = X.std(axis=0)
        # Axes (2.0, 1.2, 0.7): the spread ordering must reflect them.
        assert stds[0] > stds[1] > stds[2]

    def test_elliptical_angularly_uniform(self):
        X = synthetic.elliptical(20000, seed=0, axes=(1.0, 1.0, 1.0))
        u = X / np.linalg.norm(X, axis=1, keepdims=True)
        # Mean direction of a uniform sphere sample is ~0.
        assert np.abs(u.mean(axis=0)).max() < 0.02

    def test_census_is_discrete_heavy(self):
        X = synthetic.census(1000)
        # Most columns are small-integer categorical codes.
        frac_int = np.mean(X[:, :56] == np.round(X[:, :56]))
        assert frac_int == 1.0

    def test_table2_rows(self):
        rows = table2_rows()
        assert len(rows) == 6
        by_name = {r[0]: r for r in rows}
        assert by_name["Yahoo!"][1] == 41_904_293
        assert by_name["HIGGS"][2] == 28


class TestCSVHelpers:
    def test_roundtrip(self, tmp_path):
        X = np.arange(12.0).reshape(4, 3)
        p = tmp_path / "x.csv"
        save_csv(p, X, header=["a", "b", "c"])
        back = load_csv(p)
        assert np.allclose(back, X)

    def test_header_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            save_csv(tmp_path / "y.csv", np.ones((2, 3)), header=["a"])

    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_csv(tmp_path / "z.csv", np.ones(5))
