"""Unit and property tests for symbolic kernel expressions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dsl.errors import KernelError
from repro.dsl.expr import (
    BinOp, Call, Const, DimReduce, Indicator, Var, absval, dim_max, dim_sum,
    exp, indicator, log, pow, sqrt,
)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestConstruction:
    def test_var_is_vector(self):
        assert Var("q").shape == "vector"

    def test_const_wrap(self):
        e = Var("q") + 1
        assert isinstance(e.rhs, Const)

    def test_pow_on_vector_reduces(self):
        e = pow(Var("q") - Var("r"), 2)
        assert isinstance(e, DimReduce)
        assert e.shape == "scalar"

    def test_pow_on_scalar_stays_scalar(self):
        e = pow(Const(3.0), 2)
        assert isinstance(e, BinOp)
        assert e.shape == "scalar"

    def test_pow_requires_constant_exponent(self):
        with pytest.raises(KernelError):
            pow(Var("q"), Var("r"))

    def test_sqrt_rejects_vector(self):
        with pytest.raises(KernelError):
            sqrt(Var("q"))

    def test_exp_rejects_vector(self):
        with pytest.raises(KernelError):
            exp(Var("q"))

    def test_abs_keeps_vector(self):
        e = absval(Var("q"))
        assert e.shape == "vector"

    def test_comparison_builds_indicator(self):
        e = pow(Var("q") - Var("r"), 2) < 1.0
        assert isinstance(e, Indicator)

    def test_comparison_rejects_vectors(self):
        with pytest.raises(KernelError):
            Var("q") < 1.0

    def test_indicator_helper_rejects_non_comparison(self):
        with pytest.raises(KernelError):
            indicator(Const(1.0))

    def test_unknown_operand_rejected(self):
        with pytest.raises(KernelError):
            Var("q") + "nope"

    def test_auto_named_vars_unique(self):
        assert Var().name != Var().name


class TestStructure:
    def test_free_vars(self):
        q, r = Var("q"), Var("r")
        e = sqrt(pow(q - r, 2))
        assert {v.name for v in e.free_vars()} == {"q", "r"}

    def test_structural_equality(self):
        q, r = Var("q"), Var("r")
        assert pow(q - r, 2) == pow(Var("q") - Var("r"), 2)
        assert pow(q - r, 2) != pow(q - r, 3)

    def test_hashable(self):
        q, r = Var("q"), Var("r")
        assert len({pow(q - r, 2), pow(q - r, 2)}) == 1

    def test_substitute(self):
        q, r = Var("q"), Var("r")
        inner = pow(q - r, 2)
        e = sqrt(inner)
        out = e.substitute({inner: Const(4.0)})
        assert float(out.evaluate({})) == 2.0

    def test_walk_visits_all(self):
        q, r = Var("q"), Var("r")
        nodes = list(sqrt(pow(q - r, 2)).walk())
        assert any(isinstance(n, Var) for n in nodes)
        assert any(isinstance(n, DimReduce) for n in nodes)


class TestEvaluation:
    def test_scalar_arithmetic(self):
        e = (Const(2.0) + 3) * 4 - 6 / 2
        assert float(e.evaluate({})) == 17.0

    def test_vector_pow_is_squared_norm(self, rng):
        q = rng.normal(size=5)
        r = rng.normal(size=5)
        e = pow(Var("q") - Var("r"), 2)
        expected = float(((q - r) ** 2).sum())
        assert np.isclose(e.evaluate({"q": q, "r": r}), expected)

    def test_broadcast_pairwise(self, rng):
        Q = rng.normal(size=(4, 3))
        R = rng.normal(size=(6, 3))
        e = pow(Var("q") - Var("r"), 2)
        v = e.evaluate({"q": Q[:, None, :], "r": R[None, :, :]})
        assert v.shape == (4, 6)

    def test_dim_sum_dim_max(self, rng):
        x = rng.normal(size=7)
        assert np.isclose(dim_sum(absval(Var("x"))).evaluate({"x": x}),
                          np.abs(x).sum())
        assert np.isclose(dim_max(absval(Var("x"))).evaluate({"x": x}),
                          np.abs(x).max())

    def test_indicator_evaluates_01(self):
        e = Const(1.0) < 2.0
        assert e.evaluate({}) == 1.0
        e2 = Const(3.0) < 2.0
        assert e2.evaluate({}) == 0.0

    def test_unbound_var_raises(self):
        with pytest.raises(KernelError, match="unbound"):
            Var("q").evaluate({})

    def test_exp_log_roundtrip(self):
        e = log(exp(Const(1.5)))
        assert np.isclose(float(e.evaluate({})), 1.5)

    def test_neg(self):
        assert float((-Const(2.0)).evaluate({})) == -2.0

    @given(a=finite, b=finite)
    def test_binop_matches_python(self, a, b):
        env = {}
        assert float((Const(a) + Const(b)).evaluate(env)) == a + b
        assert float((Const(a) - Const(b)).evaluate(env)) == a - b
        assert float((Const(a) * Const(b)).evaluate(env)) == pytest.approx(
            a * b, rel=1e-12, abs=1e-300
        )

    @given(x=st.floats(min_value=1e-6, max_value=1e6))
    def test_sqrt_matches_numpy(self, x):
        assert float(sqrt(Const(x)).evaluate({})) == pytest.approx(
            float(np.sqrt(x))
        )


@pytest.fixture
def rng():
    return np.random.default_rng(0)
