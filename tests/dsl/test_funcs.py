"""Tests for metric kernels and the kernel normaliser."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dsl.errors import KernelError
from repro.dsl.expr import Const, DistVar, Var, absval, dim_max, dim_sum, exp, indicator, pow, sqrt
from repro.dsl.funcs import (
    MetricKernel, PortalFunc, normalize_kernel, resolve_func,
)

q, r = Var("q"), Var("r")


class TestNormalization:
    def test_euclidean_pattern(self):
        mk = normalize_kernel(sqrt(pow(q - r, 2)), q, r)
        assert mk.base == "sqeuclidean"
        assert mk.monotone() == "increasing"

    def test_sqeuclidean_pattern(self):
        mk = normalize_kernel(pow(q - r, 2), q, r)
        assert mk.base == "sqeuclidean"
        assert isinstance(mk.g, DistVar)

    def test_manhattan_pattern(self):
        mk = normalize_kernel(dim_sum(absval(q - r)), q, r)
        assert mk.base == "manhattan"

    def test_chebyshev_pattern(self):
        mk = normalize_kernel(dim_max(absval(q - r)), q, r)
        assert mk.base == "chebyshev"

    def test_reversed_difference_matches(self):
        mk = normalize_kernel(pow(r - q, 2), q, r)
        assert mk is not None and mk.base == "sqeuclidean"

    def test_gaussian_composition(self):
        mk = normalize_kernel(exp(-pow(q - r, 2) / 2.0), q, r)
        assert mk.base == "sqeuclidean"
        assert mk.monotone() == "decreasing"

    def test_external_when_var_escapes(self):
        # q appears outside any distance form.
        e = pow(q - r, 2) + dim_sum(q)
        assert normalize_kernel(e, q, r) is None

    def test_no_distance_form_is_external(self):
        assert normalize_kernel(Const(3.0), q, r) is None

    def test_mixed_metrics_rejected(self):
        e = pow(q - r, 2) + dim_sum(absval(q - r))
        with pytest.raises(KernelError, match="mixes"):
            normalize_kernel(e, q, r)

    def test_indicator_kernel(self):
        mk = normalize_kernel(indicator(sqrt(pow(q - r, 2)) < 2.0), q, r)
        assert mk.is_indicator
        assert mk.indicator_threshold() == ("<", 4.0)

    def test_indicator_threshold_translates_sqrt(self):
        mk = normalize_kernel(indicator(pow(q - r, 2) < 9.0), q, r)
        assert mk.indicator_threshold() == ("<", 9.0)

    def test_indicator_reversed_comparison(self):
        mk = MetricKernel("sqeuclidean",
                          indicator(Const(4.0) > sqrt(DistVar("t"))))
        op, h = mk.indicator_threshold()
        assert op == "<" and h == 16.0


class TestMetricKernelBounds:
    @given(tmin=st.floats(min_value=0, max_value=100),
           width=st.floats(min_value=0, max_value=100))
    def test_bounds_bracket_values_euclidean(self, tmin, width):
        mk = MetricKernel("sqeuclidean", sqrt(DistVar("t")))
        tmax = tmin + width
        lo, hi = mk.bounds(tmin, tmax)
        for t in np.linspace(tmin, tmax, 7):
            v = mk.value(t)
            assert lo - 1e-9 <= v <= hi + 1e-9

    @given(tmin=st.floats(min_value=0, max_value=50),
           width=st.floats(min_value=0, max_value=50))
    def test_bounds_bracket_values_gaussian(self, tmin, width):
        mk = MetricKernel(
            "sqeuclidean",
            exp(-(DistVar("t")) / 8.0),
        )
        tmax = tmin + width
        lo, hi = mk.bounds(tmin, tmax)
        for t in np.linspace(tmin, tmax, 7):
            v = mk.value(t)
            assert lo - 1e-9 <= v <= hi + 1e-9

    def test_monotone_none_for_nonmonotone(self):
        # g(t) = (t - 1)^2 dips then rises.
        t = DistVar("t")
        mk = MetricKernel("sqeuclidean", (t - 1.0) * (t - 1.0))
        assert mk.monotone() is None

    def test_unknown_base_rejected(self):
        with pytest.raises(KernelError):
            MetricKernel("hamming", DistVar("t"))


class TestPredefined:
    @pytest.mark.parametrize("func,base", [
        (PortalFunc.EUCLIDEAN, "sqeuclidean"),
        (PortalFunc.SQREUCDIST, "sqeuclidean"),
        (PortalFunc.MANHATTAN, "manhattan"),
        (PortalFunc.CHEBYSHEV, "chebyshev"),
    ])
    def test_base_metrics(self, func, base):
        mk, ext = resolve_func(func)
        assert ext is None and mk.base == base

    def test_mahalanobis_whitens(self):
        mk, _ = resolve_func(PortalFunc.MAHALANOBIS,
                             params={"covariance": np.eye(3)})
        assert mk.whiten
        assert mk.covariance.shape == (3, 3)

    def test_gaussian_bandwidth(self):
        mk, _ = resolve_func(PortalFunc.GAUSSIAN, params={"bandwidth": 2.0})
        assert np.isclose(mk.value(0.0), 1.0)
        assert mk.value(8.0) == pytest.approx(np.exp(-1.0))

    def test_gaussian_bad_bandwidth(self):
        with pytest.raises(KernelError):
            resolve_func(PortalFunc.GAUSSIAN, params={"bandwidth": 0.0})

    def test_callable_is_external(self):
        fn = lambda Q, R: np.zeros((len(Q), len(R)))  # noqa: E731
        mk, ext = resolve_func(fn)
        assert mk is None and ext is fn

    def test_none_kernel(self):
        assert resolve_func(None) == (None, None)

    def test_garbage_rejected(self):
        with pytest.raises(KernelError):
            resolve_func(3.14)

    def test_describe_mentions_base(self):
        mk, _ = resolve_func(PortalFunc.EUCLIDEAN)
        assert "‖q−r‖²" in mk.describe()
