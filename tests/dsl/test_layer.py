"""Tests for Layer construction (the addLayer argument forms)."""

import numpy as np
import pytest

from repro.dsl import (
    PortalFunc, PortalOp, SpecificationError, Storage, Var, pow, sqrt,
)
from repro.dsl.errors import OperatorError
from repro.dsl.layer import Layer


@pytest.fixture
def store(rng):
    return Storage(rng.normal(size=(20, 3)), name="pts")


@pytest.fixture
def rng():
    return np.random.default_rng(2)


class TestBuildForms:
    def test_op_storage(self, store):
        layer = Layer.build(PortalOp.FORALL, (store,), {})
        assert layer.op is PortalOp.FORALL and layer.storage is store

    def test_op_storage_func(self, store):
        layer = Layer.build(PortalOp.ARGMIN, (store, PortalFunc.EUCLIDEAN), {})
        assert layer.func is PortalFunc.EUCLIDEAN

    def test_op_var_storage(self, store):
        v = Var("q")
        layer = Layer.build(PortalOp.FORALL, (v, store), {})
        assert layer.var is v

    def test_op_var_storage_func(self, store):
        q, r = Var("q"), Var("r")
        e = sqrt(pow(q - r, 2))
        layer = Layer.build(PortalOp.ARGMIN, (r, store, e), {})
        assert layer.var is r and layer.func is e

    def test_tuple_k(self, store):
        layer = Layer.build((PortalOp.KARGMIN, 3), (store, PortalFunc.EUCLIDEAN), {})
        assert layer.k == 3

    def test_k_exceeding_size_rejected(self, store):
        with pytest.raises(SpecificationError, match="exceeds"):
            Layer.build((PortalOp.KARGMIN, 21), (store, PortalFunc.EUCLIDEAN), {})

    def test_missing_storage_rejected(self):
        with pytest.raises(SpecificationError, match="Storage"):
            Layer.build(PortalOp.FORALL, (Var("q"),), {})

    def test_extra_args_rejected(self, store):
        with pytest.raises(SpecificationError, match="too many"):
            Layer.build(PortalOp.FORALL, (store, PortalFunc.EUCLIDEAN, 1), {})

    def test_k_on_single_op_rejected(self, store):
        with pytest.raises(OperatorError):
            Layer.build((PortalOp.ARGMIN, 2), (store,), {})

    def test_params_stored(self, store):
        layer = Layer.build(PortalOp.SUM, (store, PortalFunc.GAUSSIAN),
                            {"bandwidth": 0.7})
        assert layer.params["bandwidth"] == 0.7


class TestOutputSize:
    def test_forall_injects_dataset_size(self, store):
        layer = Layer.build(PortalOp.FORALL, (store,), {})
        assert layer.output_size == store.n

    def test_single_injects_one(self, store):
        layer = Layer.build(PortalOp.MIN, (store, PortalFunc.EUCLIDEAN), {})
        assert layer.output_size == 1

    def test_multi_injects_k(self, store):
        layer = Layer.build((PortalOp.KMIN, 4), (store, PortalFunc.EUCLIDEAN), {})
        assert layer.output_size == 4

    def test_union_unbounded(self, store):
        layer = Layer.build(PortalOp.UNIONARG, (store,), {})
        assert layer.output_size == -1


class TestKernelResolution:
    def test_predefined_resolves(self, store):
        layer = Layer.build(PortalOp.ARGMIN, (store, PortalFunc.EUCLIDEAN), {})
        layer.var = Var("r")
        layer.resolve_kernel(Var("q"))
        assert layer.metric_kernel is not None
        assert layer.metric_kernel.base == "sqeuclidean"

    def test_symbolic_resolves(self, store):
        q, r = Var("q"), Var("r")
        layer = Layer.build(PortalOp.ARGMIN, (r, store, sqrt(pow(q - r, 2))), {})
        layer.resolve_kernel(q)
        assert layer.metric_kernel is not None

    def test_callable_is_external(self, store):
        fn = lambda Q, R: np.zeros((len(Q), len(R)))  # noqa: E731
        layer = Layer.build(PortalOp.SUM, (store, fn), {})
        layer.var = Var("r")
        layer.resolve_kernel(Var("q"))
        assert layer.metric_kernel is None and layer.external is fn

    def test_describe(self, store):
        layer = Layer.build((PortalOp.KARGMIN, 2), (store, PortalFunc.EUCLIDEAN), {})
        text = layer.describe()
        assert "KARGMIN" in text and "pts" in text and "EUCLIDEAN" in text
