"""Unit tests for the Portal operator table (paper Table I)."""

import math

import pytest

from repro.dsl.errors import OperatorError
from repro.dsl.ops import (
    MAX_LIKE, MIN_LIKE, OpCategory, PortalOp, op_info, operator_table,
    resolve_op,
)


class TestOperatorTable:
    def test_all_category(self):
        assert op_info(PortalOp.FORALL).category is OpCategory.ALL

    @pytest.mark.parametrize("op", [
        PortalOp.SUM, PortalOp.PROD, PortalOp.MIN, PortalOp.MAX,
        PortalOp.ARGMIN, PortalOp.ARGMAX,
    ])
    def test_single_category(self, op):
        assert op_info(op).category is OpCategory.SINGLE

    @pytest.mark.parametrize("op", [
        PortalOp.KMIN, PortalOp.KMAX, PortalOp.KARGMIN, PortalOp.KARGMAX,
        PortalOp.UNION, PortalOp.UNIONARG,
    ])
    def test_multi_category(self, op):
        assert op_info(op).category is OpCategory.MULTI

    def test_every_operator_has_info(self):
        for op in PortalOp:
            info = op_info(op)
            assert info.mathematical

    def test_table_has_13_rows(self):
        assert len(operator_table()) == len(PortalOp) == 13

    def test_identities(self):
        assert op_info(PortalOp.SUM).identity == 0.0
        assert op_info(PortalOp.PROD).identity == 1.0
        assert op_info(PortalOp.MIN).identity == math.inf
        assert op_info(PortalOp.MAX).identity == -math.inf
        assert op_info(PortalOp.KARGMIN).identity == math.inf

    def test_comparative_flags(self):
        for op in MIN_LIKE | MAX_LIKE:
            assert op_info(op).comparative
        assert not op_info(PortalOp.SUM).comparative
        assert not op_info(PortalOp.FORALL).comparative

    def test_arithmetic_flags(self):
        assert op_info(PortalOp.SUM).arithmetic
        assert op_info(PortalOp.PROD).arithmetic
        assert not op_info(PortalOp.MIN).arithmetic

    def test_index_flags(self):
        for op in (PortalOp.ARGMIN, PortalOp.ARGMAX, PortalOp.KARGMIN,
                   PortalOp.KARGMAX, PortalOp.UNIONARG):
            assert op_info(op).returns_index
        assert not op_info(PortalOp.MIN).returns_index

    def test_all_decomposable(self):
        for op in PortalOp:
            assert op_info(op).decomposable


class TestResolveOp:
    def test_bare_operator(self):
        assert resolve_op(PortalOp.SUM) == (PortalOp.SUM, None)

    def test_string_operator(self):
        assert resolve_op("argmin") == (PortalOp.ARGMIN, None)

    def test_tuple_with_k(self):
        assert resolve_op((PortalOp.KARGMIN, 5)) == (PortalOp.KARGMIN, 5)

    def test_string_tuple(self):
        assert resolve_op(("KMIN", 3)) == (PortalOp.KMIN, 3)

    def test_missing_k_rejected(self):
        with pytest.raises(OperatorError, match="requires k"):
            resolve_op(PortalOp.KARGMIN)

    def test_unneeded_k_rejected(self):
        with pytest.raises(OperatorError, match="does not take"):
            resolve_op((PortalOp.SUM, 3))

    @pytest.mark.parametrize("bad_k", [0, -1, 2.5, True])
    def test_bad_k_rejected(self, bad_k):
        with pytest.raises(OperatorError):
            resolve_op((PortalOp.KARGMIN, bad_k))

    def test_unknown_name_rejected(self):
        with pytest.raises(OperatorError, match="unknown"):
            resolve_op("NOPE")

    def test_non_operator_rejected(self):
        with pytest.raises(OperatorError):
            resolve_op(42)

    def test_malformed_tuple_rejected(self):
        with pytest.raises(OperatorError):
            resolve_op((PortalOp.KMIN, 1, 2))
