"""Tests for the textual Portal frontend (Appendix-VIII grammar)."""

import numpy as np
import pytest

from repro.dsl import ParseError, parse_program
from repro.baselines import brute


@pytest.fixture
def rng():
    return np.random.default_rng(4)


@pytest.fixture
def data(rng):
    return rng.normal(size=(200, 3)), rng.normal(size=(250, 3))


NN_PROGRAM = """
// paper Code 3
Storage query("qf.csv");
Storage reference("rf.csv");
Var q;
Var r;
Expr EuclidDist = sqrt(pow((q - r), 2));
PortalExpr expr;
expr.addLayer(FORALL, q, query);
expr.addLayer(ARGMIN, r, reference, EuclidDist);
expr.execute();
Storage output = expr.getOutput();
"""


class TestPrograms:
    def test_nearest_neighbor(self, data):
        Q, R = data
        prog = parse_program(NN_PROGRAM, bindings={"qf.csv": Q, "rf.csv": R})
        res = prog.run(fastmath=False)
        db, ib = brute.brute_knn(Q, R, k=1)
        assert np.allclose(res["output"].values, db)
        assert np.array_equal(res["output"].indices, ib)

    def test_predefined_metric_name(self, data):
        Q, R = data
        src = """
        Storage query("q");
        Storage reference("r");
        PortalExpr e;
        e.addLayer(FORALL, query);
        e.addLayer(ARGMIN, reference, EUCLIDEAN);
        e.execute();
        """
        prog = parse_program(src, bindings={"q": Q, "r": R})
        res = prog.run(fastmath=False)
        db, _ = brute.brute_knn(Q, R, k=1)
        assert np.allclose(res["e"].values, db)

    def test_multi_reduction_k(self, data):
        Q, R = data
        src = """
        Storage query("q");
        Storage reference("r");
        PortalExpr e;
        e.addLayer(FORALL, query);
        e.addLayer((KARGMIN, 3), reference, EUCLIDEAN);
        e.execute();
        """
        prog = parse_program(src, bindings={"q": Q, "r": R})
        res = prog.run(fastmath=False)
        db, _ = brute.brute_knn(Q, R, k=3)
        assert np.allclose(res["e"].values, db)

    def test_indicator_kernel(self, data):
        Q, _ = data
        src = """
        Storage d("d");
        Var a; Var b;
        PortalExpr e;
        e.addLayer(SUM, a, d);
        e.addLayer(SUM, b, d, sqrt(pow((a - b), 2)) < 0.5);
        e.execute();
        """
        prog = parse_program(src, bindings={"d": Q})
        res = prog.run()
        assert res["e"].scalar == brute.brute_two_point(Q, 0.5)

    def test_cpp_style_qualified_names(self, data):
        """The paper's embedded snippets write PortalOp::FORALL and
        PortalFunc::EUCLIDEAN; the textual frontend accepts both."""
        Q, R = data
        src = """
        Storage query("q");
        Storage reference("r");
        PortalExpr e;
        e.addLayer(PortalOp::FORALL, query);
        e.addLayer((PortalOp::KARGMIN, 2), reference, PortalFunc::EUCLIDEAN);
        e.execute();
        """
        prog = parse_program(src, bindings={"q": Q, "r": R})
        res = prog.run(fastmath=False)
        db, _ = brute.brute_knn(Q, R, k=2)
        assert np.allclose(res["e"].values, db)

    def test_unknown_qualified_func(self, data):
        Q, R = data
        src = """
        Storage q("q"); Storage r("r");
        PortalExpr e;
        e.addLayer(FORALL, q);
        e.addLayer(MIN, r, PortalFunc::HAMMING);
        e.execute();
        """
        with pytest.raises(ParseError, match="unknown PortalFunc"):
            parse_program(src, bindings={"q": Q, "r": R})

    def test_block_comment(self, data):
        Q, R = data
        src = "/* header */ Storage q(\"q\"); Storage r(\"r\");" \
              "PortalExpr e; e.addLayer(FORALL, q);" \
              "e.addLayer(MIN, r, EUCLIDEAN); e.execute();"
        prog = parse_program(src, bindings={"q": Q, "r": R})
        assert "e" in prog.portal_exprs


class TestErrors:
    def test_unknown_operator(self):
        with pytest.raises(ParseError, match="unknown Portal operator"):
            parse_program(
                'Storage q("q"); PortalExpr e; e.addLayer(NOPE, q);',
                bindings={"q": np.ones((3, 2))},
            )

    def test_unbound_storage(self):
        with pytest.raises(ParseError, match="neither"):
            parse_program('Storage q(data); PortalExpr e;')

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program('Var q Var r;')

    def test_no_portal_expr(self):
        with pytest.raises(ParseError, match="no PortalExpr"):
            parse_program('Var q;')

    def test_unknown_method(self):
        with pytest.raises(ParseError, match="unknown method"):
            parse_program(
                'Storage q("q"); PortalExpr e; e.frobnicate();',
                bindings={"q": np.ones((3, 2))},
            )

    def test_unknown_name_in_expression(self):
        with pytest.raises(ParseError, match="unknown name"):
            parse_program(
                'Storage q("q"); Var a; Expr e = a + zz; PortalExpr p;',
                bindings={"q": np.ones((3, 2))},
            )

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_program("Var q; $")

    def test_error_carries_location(self):
        try:
            parse_program("Var q; $")
        except ParseError as err:
            assert err.line is not None
