"""Tests for PortalExpr validation and lifecycle."""

import numpy as np
import pytest

from repro.dsl import (
    PortalExpr, PortalFunc, PortalOp, SpecificationError, Storage,
)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


@pytest.fixture
def stores(rng):
    return (Storage(rng.normal(size=(30, 3)), name="q"),
            Storage(rng.normal(size=(40, 3)), name="r"))


class TestValidation:
    def test_single_layer_rejected(self, stores):
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, stores[0])
        with pytest.raises(SpecificationError, match="two layers"):
            e.validate()

    def test_zero_layers_rejected(self):
        with pytest.raises(SpecificationError):
            PortalExpr().validate()

    def test_missing_kernel_rejected(self, stores):
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, stores[0])
        e.addLayer(PortalOp.ARGMIN, stores[1])
        with pytest.raises(SpecificationError, match="kernel"):
            e.validate()

    def test_dim_mismatch_rejected(self, rng, stores):
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, stores[0])
        e.addLayer(PortalOp.ARGMIN, Storage(rng.normal(size=(10, 5))),
                   PortalFunc.EUCLIDEAN)
        with pytest.raises(SpecificationError, match="dimensionality"):
            e.validate()

    def test_valid_program_passes(self, stores):
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, stores[0])
        e.addLayer(PortalOp.ARGMIN, stores[1], PortalFunc.EUCLIDEAN)
        e.validate()
        assert e.layers[1].metric_kernel is not None

    def test_vars_autofilled(self, stores):
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, stores[0])
        e.addLayer(PortalOp.ARGMIN, stores[1], PortalFunc.EUCLIDEAN)
        e.validate()
        assert all(l.var is not None for l in e.layers)


class TestLifecycle:
    def test_output_before_execute_raises(self, stores):
        e = PortalExpr()
        with pytest.raises(SpecificationError):
            e.getOutput()

    def test_program_before_compile_raises(self):
        with pytest.raises(SpecificationError):
            _ = PortalExpr().program

    def test_execute_sets_output(self, stores):
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, stores[0])
        e.addLayer(PortalOp.ARGMIN, stores[1], PortalFunc.EUCLIDEAN)
        out = e.execute()
        assert e.getOutput() is out
        assert out.values.shape == (30,)

    def test_unknown_option_rejected(self, stores):
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, stores[0])
        e.addLayer(PortalOp.ARGMIN, stores[1], PortalFunc.EUCLIDEAN)
        with pytest.raises(SpecificationError, match="unknown execute"):
            e.execute(bogus=True)

    def test_describe_lists_layers(self, stores):
        e = PortalExpr("nn")
        e.addLayer(PortalOp.FORALL, stores[0])
        e.addLayer(PortalOp.ARGMIN, stores[1], PortalFunc.EUCLIDEAN)
        text = e.describe()
        assert "FORALL" in text and "ARGMIN" in text

    def test_ir_dump_accessible_after_compile(self, stores):
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, stores[0])
        e.addLayer(PortalOp.ARGMIN, stores[1], PortalFunc.EUCLIDEAN)
        e.compile()
        assert "BaseCase" in e.ir_dump("lowered")
        assert "_pairwise" in e.generated_source()

    def test_snake_case_aliases(self, stores):
        e = PortalExpr()
        e.add_layer(PortalOp.FORALL, stores[0])
        e.add_layer(PortalOp.ARGMIN, stores[1], PortalFunc.EUCLIDEAN)
        e.execute()
        assert e.get_output() is not None
