"""Program-level parse/unparse round-trip: ``parse(unparse(parse(p)))``
must equal ``parse(p)`` for every example program and for seeded
generated programs.

The first parse canonicalises the text (negative literals fold into
``Const``, indicator comparisons get explicit parentheses on the way
back out); the property pins that one unparse/parse cycle is then the
identity on program structure.
"""

import itertools
from pathlib import Path

import numpy as np
import pytest

from repro.dsl import PortalFunc, parse_program
from repro.dsl.expr import Expr
from repro.dsl.unparse import unparse_program

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples" / "programs").glob(
        "*.portal"
    )
)

RNG = np.random.default_rng(4242)
_DATA = {
    name: RNG.normal(size=(20, 3))
    for name in ("query.csv", "reference.csv", "data.csv")
}


def _func_key(func):
    if func is None:
        return None
    if isinstance(func, PortalFunc):
        return ("portal_func", func.name)
    if isinstance(func, Expr):
        return ("expr", func)
    raise AssertionError(f"unroundtrippable layer function {func!r}")


def _structure(program):
    """Structural fingerprint of every PortalExpr in a parsed program."""
    out = {}
    for name, pexpr in program.portal_exprs.items():
        out[name] = [
            (
                layer.op.name,
                layer.k,
                None if layer.var is None else layer.var.name,
                layer.storage.name,
                _func_key(layer.func),
            )
            for layer in pexpr.layers
        ]
    return out


def _roundtrip(text, bindings):
    first = parse_program(text, bindings=bindings)
    again_text = "\n".join(
        unparse_program(pexpr, with_output=False)
        for pexpr in first.portal_exprs.values()
    )
    second = parse_program(again_text, bindings=_rebind(first))
    assert _structure(second) == _structure(first)
    # And the cycle is a fixed point: unparsing the re-parse gives the
    # same text (so diffs in golden program dumps are meaningful).
    third_text = "\n".join(
        unparse_program(pexpr, with_output=False)
        for pexpr in second.portal_exprs.values()
    )
    assert third_text == again_text
    return first, second


def _rebind(program):
    """Bindings for the unparsed text: the default `<name>.csv` sources."""
    return {
        f"{name}.csv": storage.data
        for name, storage in program.storages.items()
    }


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_program_roundtrip(path):
    text = path.read_text()
    _roundtrip(text, bindings=_DATA)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_program_roundtrip_preserves_results(path):
    text = path.read_text()
    first, second = _roundtrip(text, bindings=_DATA)
    res1 = first.run(fastmath=False)
    res2 = second.run(fastmath=False)
    for name in first.executed:
        out1, out2 = res1[name], res2[name]
        if out1.values is not None:
            np.testing.assert_allclose(np.asarray(out2.values, dtype=float),
                                       np.asarray(out1.values, dtype=float))
        if out1.indices is not None and not isinstance(out1.indices, list):
            assert np.array_equal(out2.indices, out1.indices)


# -- generated programs ------------------------------------------------------

_KERNELS = [
    "sqrt(pow((q - r), 2))",
    "exp((-pow((q - r), 2) / 2))",
    "pow((pow((q - r), 2) + 0.25), -0.5)",
    "(sqrt(pow((q - r), 2)) < 1.3)",
    "GAUSSIAN",
    "EUCLIDEAN",
]
_SHAPES = [
    ("FORALL", "SUM"),
    ("FORALL", "MIN"),
    ("FORALL", "(KARGMIN, 2)"),
    ("SUM", "SUM"),
    ("MAX", "MIN"),
]


def _generated_programs():
    for i, (shape, kern) in enumerate(
        itertools.product(_SHAPES, _KERNELS)
    ):
        outer, inner = shape
        named = kern[0].isupper()
        uses_vars = not named
        lines = [
            'Storage query("query.csv");',
            'Storage reference("reference.csv");',
        ]
        if uses_vars:
            lines += ["Var q;", "Var r;"]
        lines.append(f"PortalExpr p{i};")
        if uses_vars:
            lines.append(f"p{i}.addLayer({outer}, q, query);")
            lines.append(f"p{i}.addLayer({inner}, r, reference, {kern});")
        else:
            lines.append(f"p{i}.addLayer({outer}, query);")
            lines.append(f"p{i}.addLayer({inner}, reference, {kern});")
        lines.append(f"p{i}.execute();")
        yield "\n".join(lines) + "\n"


@pytest.mark.parametrize(
    "text", list(_generated_programs()),
    ids=lambda t: t.splitlines()[-3].rstrip(";").replace(" ", ""),
)
def test_generated_program_roundtrip(text):
    _roundtrip(text, bindings=_DATA)
