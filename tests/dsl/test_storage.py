"""Tests for the Storage data structure."""

import numpy as np
import pytest

from repro.dsl.errors import StorageError
from repro.dsl.storage import Storage


class TestConstruction:
    def test_from_array(self, rng):
        s = Storage(rng.normal(size=(10, 4)))
        assert s.n == 10 and s.dim == 4

    def test_from_list(self):
        s = Storage([[1.0, 2.0], [3.0, 4.0]])
        assert s.n == 2 and s.dim == 2

    def test_1d_promoted(self):
        s = Storage([1.0, 2.0, 3.0])
        assert s.n == 3 and s.dim == 1

    def test_from_storage_shares_data(self, rng):
        a = Storage(rng.normal(size=(5, 2)), name="a")
        b = Storage(a)
        assert b.data is a.data
        assert b.name == "a"

    def test_empty_rejected(self):
        with pytest.raises(StorageError, match="empty"):
            Storage(np.empty((0, 3)))

    def test_3d_rejected(self, rng):
        with pytest.raises(StorageError, match="2-D"):
            Storage(rng.normal(size=(2, 3, 4)))

    def test_nan_rejected(self):
        with pytest.raises(StorageError, match="NaN"):
            Storage([[1.0, np.nan]])

    def test_inf_rejected(self):
        with pytest.raises(StorageError):
            Storage([[np.inf, 1.0]])

    def test_weights_shape_checked(self, rng):
        with pytest.raises(StorageError, match="weights"):
            Storage(rng.normal(size=(5, 2)), weights=np.ones(4))

    def test_labels_shape_checked(self, rng):
        with pytest.raises(StorageError, match="labels"):
            Storage(rng.normal(size=(5, 2)), labels=np.zeros(6))


class TestCSV:
    def test_roundtrip(self, tmp_path, rng):
        data = rng.normal(size=(8, 3))
        path = tmp_path / "pts.csv"
        np.savetxt(path, data, delimiter=",")
        s = Storage(str(path))
        assert np.allclose(s.data, data)
        assert s.name == "pts"

    def test_header_skipped(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("x,y\n1,2\n3,4\n")
        s = Storage(str(path))
        assert s.n == 2

    def test_missing_file(self):
        with pytest.raises(StorageError, match="not found"):
            Storage("/nonexistent/file.csv")

    def test_ragged_rejected(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("1,2\n3\n")
        with pytest.raises(StorageError, match="ragged"):
            Storage(str(path))

    def test_non_numeric_body_rejected(self, tmp_path):
        path = tmp_path / "b.csv"
        path.write_text("1,2\nx,4\n")
        with pytest.raises(StorageError, match="non-numeric"):
            Storage(str(path))


class TestLayout:
    def test_low_dim_column_major(self, rng):
        assert Storage(rng.normal(size=(5, 3))).layout == "column"
        assert Storage(rng.normal(size=(5, 4))).layout == "column"

    def test_high_dim_row_major(self, rng):
        assert Storage(rng.normal(size=(5, 5))).layout == "row"
        assert Storage(rng.normal(size=(5, 64))).layout == "row"

    def test_colmajor_view_matches(self, rng):
        s = Storage(rng.normal(size=(6, 3)))
        assert np.array_equal(s.colmajor, s.data.T)
        assert s.colmajor.flags["C_CONTIGUOUS"]

    def test_physical_follows_layout(self, rng):
        low = Storage(rng.normal(size=(6, 2)))
        high = Storage(rng.normal(size=(6, 9)))
        assert low.physical().shape == (2, 6)
        assert high.physical().shape == (6, 9)


class TestLifecycle:
    def test_clear_releases(self, rng):
        s = Storage(rng.normal(size=(4, 2)))
        s.clear()
        with pytest.raises(StorageError, match="clear"):
            _ = s.data
        with pytest.raises(StorageError):
            _ = s.n

    def test_repr_after_clear(self, rng):
        s = Storage(rng.normal(size=(4, 2)), name="x")
        s.clear()
        assert "cleared" in repr(s)

    def test_subset(self, rng):
        s = Storage(rng.normal(size=(10, 2)), weights=np.arange(10.0))
        sub = s.subset([1, 3, 5])
        assert sub.n == 3
        assert np.array_equal(sub.weights, [1.0, 3.0, 5.0])

    def test_len(self, rng):
        assert len(Storage(rng.normal(size=(7, 2)))) == 7


@pytest.fixture
def rng():
    return np.random.default_rng(1)
