"""Round-trip tests: embedded programs → Portal text → parser → same
results, plus a hypothesis property over random grammar expressions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsl import (
    KernelError, PortalExpr, PortalFunc, PortalOp, Storage, Var, absval,
    dim_sum, exp, indicator, parse_program, pow, sqrt,
)
from repro.dsl.expr import Const
from repro.dsl.parser import _Parser, _tokenize
from repro.dsl.unparse import unparse_expr, unparse_program


def parse_expr(text: str, variables: dict):
    """Parse a standalone expression via the program parser internals."""
    p = _Parser(_tokenize(text), None)
    p.program.variables.update(variables)
    return p._expression()


# -- expression round-trips ---------------------------------------------------

q, r = Var("q"), Var("r")
VARS = {"q": q, "r": r}


def scalar_exprs():
    """Random grammar-expressible scalar expressions over q, r."""
    base = st.one_of(
        st.floats(0.1, 9.9).map(lambda v: Const(round(v, 2))),
        st.just(pow(q - r, 2)),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda ab: ab[0] + ab[1]),
            st.tuples(children, children).map(lambda ab: ab[0] * ab[1]),
            st.tuples(children, children).map(lambda ab: ab[0] - ab[1]),
            children.map(lambda a: sqrt(absval(a) if False else a * a)),
            children.map(exp_safe),
        )

    return st.recursive(base, extend, max_leaves=6)


def exp_safe(a):
    return exp(Const(0.0) - a * Const(0.001))


class TestExprRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(e=scalar_exprs())
    def test_unparse_parse_identity(self, e):
        text = unparse_expr(e)
        back = parse_expr(text, VARS)
        assert back == e

    def test_euclidean_form(self):
        e = sqrt(pow(q - r, 2))
        assert unparse_expr(e) == "sqrt(pow((q - r), 2))"
        assert parse_expr(unparse_expr(e), VARS) == e

    def test_indicator(self):
        e = indicator(sqrt(pow(q - r, 2)) < 2.0)
        back = parse_expr(unparse_expr(e), VARS)
        assert back == e

    def test_dim_sum_has_no_spelling(self):
        with pytest.raises(KernelError):
            unparse_expr(dim_sum(absval(q - r)))

    def test_callable_kernel_rejected(self):
        e = PortalExpr("x")
        s = Storage(np.ones((5, 2)), name="d")
        e.addLayer(PortalOp.FORALL, s)
        e.addLayer(PortalOp.SUM, s, lambda Q, R: np.zeros((len(Q), len(R))))
        with pytest.raises(KernelError):
            unparse_program(e)


# -- program round-trips ---------------------------------------------------------

class TestProgramRoundTrip:
    def _knn_expr(self, Q, R):
        e = PortalExpr("knn")
        qv, rv = Var("q"), Var("r")
        e.addLayer(PortalOp.FORALL, qv, Storage(Q, name="query"))
        e.addLayer((PortalOp.KARGMIN, 3), rv, Storage(R, name="reference"),
                   sqrt(pow(qv - rv, 2)))
        return e

    def test_knn_roundtrip(self):
        rng = np.random.default_rng(0)
        Q = rng.normal(size=(60, 3))
        R = rng.normal(size=(70, 3))
        expr = self._knn_expr(Q, R)
        text = unparse_program(expr)
        assert 'Storage query("query.csv");' in text
        assert "(KARGMIN, 3)" in text

        prog = parse_program(text, bindings={"query.csv": Q,
                                             "reference.csv": R})
        res = prog.run(fastmath=False)
        direct = expr.execute(fastmath=False)
        assert np.allclose(res["output"].values, direct.values)

    def test_predefined_func_roundtrip(self):
        rng = np.random.default_rng(1)
        Q = rng.normal(size=(40, 3))
        e = PortalExpr("nn")
        s = Storage(Q, name="pts")
        e.addLayer(PortalOp.FORALL, s)
        e.addLayer(PortalOp.ARGMIN, s, PortalFunc.EUCLIDEAN)
        text = unparse_program(e, sources={"pts": "mydata.csv"})
        assert 'Storage pts("mydata.csv");' in text
        assert "EUCLIDEAN" in text
        prog = parse_program(text, bindings={"mydata.csv": Q})
        res = prog.run(fastmath=False)
        direct = e.execute(fastmath=False)
        assert np.array_equal(res["output"].indices, direct.indices)

    def test_weird_name_sanitised(self):
        e = PortalExpr("my problem!")
        s = Storage(np.ones((5, 2)) * np.arange(5)[:, None], name="d")
        e.addLayer(PortalOp.FORALL, s)
        e.addLayer(PortalOp.MIN, s, PortalFunc.EUCLIDEAN)
        text = unparse_program(e)
        assert "PortalExpr my_problem_;" in text
        parse_program(text, bindings={"d.csv": np.ones((5, 2)) *
                                      np.arange(5)[:, None]})
