"""Unit tests for the 2-D Laplace expansion operators."""

import numpy as np
import pytest

from repro.fmm import direct_potential, l2l, l2p, m2l, m2m, m2p, p2m


@pytest.fixture
def rng():
    return np.random.default_rng(37)


@pytest.fixture
def system(rng):
    pts = rng.uniform(0, 1, (25, 2))
    q = rng.normal(size=25)
    z = pts[:, 0] + 1j * pts[:, 1]
    zc = 0.5 + 0.5j
    return z, q, zc


def truth(z, q, at: complex) -> float:
    return float((q * np.log(np.abs(at - z))).sum())


P = 14


class TestOperators:
    def test_m2p_far_field(self, system):
        z, q, zc = system
        a = p2m(z, q, zc, P)
        at = 7.0 + 3.0j
        assert m2p(a, np.array([at]), zc)[0] == pytest.approx(
            truth(z, q, at), abs=1e-10)

    def test_m2m_preserves_far_field(self, system):
        z, q, zc = system
        a = p2m(z, q, zc, P)
        zc2 = 0.2 + 0.7j
        shifted = m2m(a, zc - zc2)
        at = -6.0 + 5.0j
        assert m2p(shifted, np.array([at]), zc2)[0] == pytest.approx(
            truth(z, q, at), abs=1e-9)

    def test_m2l_local_field(self, system):
        z, q, zc = system
        a = p2m(z, q, zc, P)
        zl = 8.0 + 8.0j
        b = m2l(a, zc - zl)
        at = zl + 0.07 - 0.04j
        assert l2p(b, np.array([at]), zl)[0] == pytest.approx(
            truth(z, q, at), abs=1e-9)

    def test_l2l_exact_recentering(self, system):
        z, q, zc = system
        a = p2m(z, q, zc, P)
        zl = 8.0 + 8.0j
        b = m2l(a, zc - zl)
        zl2 = zl + 0.15 + 0.1j
        b2 = l2l(b, zl - zl2)
        at = zl2 + 0.05j
        # L2L is an exact polynomial re-centering.
        assert l2p(b2, np.array([at]), zl2)[0] == pytest.approx(
            l2p(b, np.array([at]), zl)[0], rel=1e-12)

    def test_truncation_error_decays_geometrically(self, system):
        z, q, zc = system
        at = 1.6 + 1.6j   # moderately separated: truncation visible
        errs = []
        for p in (2, 6, 10):
            a = p2m(z, q, zc, p)
            errs.append(abs(m2p(a, np.array([at]), zc)[0] - truth(z, q, at)))
        assert errs[0] > errs[1] > errs[2]

    def test_total_charge_preserved_by_m2m(self, system):
        z, q, zc = system
        a = p2m(z, q, zc, P)
        shifted = m2m(a, 0.3 - 0.2j)
        assert shifted[0] == pytest.approx(q.sum())

    def test_direct_potential_skips_self(self, rng):
        pts = rng.uniform(0, 1, (10, 2))
        q = rng.normal(size=10)
        z = pts[:, 0] + 1j * pts[:, 1]
        phi = direct_potential(z, z, q)
        expected = np.zeros(10)
        for i in range(10):
            for j in range(10):
                if i != j:
                    expected[i] += q[j] * np.log(abs(z[i] - z[j]))
        assert np.allclose(phi, expected)
