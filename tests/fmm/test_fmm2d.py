"""Integration tests for the full 2-D FMM."""

import numpy as np
import pytest

from repro.fmm import FMMReport, UniformGrid, direct_potential, fmm_potential

pytestmark = pytest.mark.slow


@pytest.fixture
def rng():
    return np.random.default_rng(38)


@pytest.fixture
def system(rng):
    pts = rng.uniform(0, 1, (800, 2))
    q = rng.normal(size=800)
    z = pts[:, 0] + 1j * pts[:, 1]
    return pts, q, direct_potential(z, z, q)


class TestFMM:
    def test_matches_direct(self, system):
        pts, q, exact = system
        phi = fmm_potential(pts, q, p=10)
        rel = np.abs(phi - exact).max() / np.abs(exact).max()
        assert rel < 1e-5

    def test_error_decays_with_p(self, system):
        pts, q, exact = system
        errs = [
            np.abs(fmm_potential(pts, q, p=p) - exact).max()
            for p in (2, 5, 9)
        ]
        assert errs[0] > errs[1] > errs[2]

    def test_report(self, system):
        pts, q, _ = system
        phi, rep = fmm_potential(pts, q, p=6, return_report=True)
        assert isinstance(rep, FMMReport)
        assert rep.levels >= 2 and rep.m2l_translations > 0
        # Near field must be a small fraction of all N² pairs.
        assert rep.near_field_pairs < 0.5 * len(pts) ** 2

    def test_clustered_points(self, rng):
        pts = np.concatenate([
            rng.normal((0.2, 0.2), 0.02, (300, 2)),
            rng.normal((0.8, 0.8), 0.02, (300, 2)),
        ])
        q = rng.normal(size=600)
        z = pts[:, 0] + 1j * pts[:, 1]
        exact = direct_potential(z, z, q)
        phi = fmm_potential(pts, q, p=10)
        assert np.abs(phi - exact).max() / np.abs(exact).max() < 1e-4

    def test_neutral_charges(self, rng):
        pts = rng.uniform(0, 1, (400, 2))
        q = rng.normal(size=400)
        q -= q.mean()                       # zero net charge
        z = pts[:, 0] + 1j * pts[:, 1]
        exact = direct_potential(z, z, q)
        phi = fmm_potential(pts, q, p=10)
        assert np.abs(phi - exact).max() < 1e-4 * np.abs(exact).max() + 1e-9

    def test_input_validation(self, rng):
        with pytest.raises(ValueError):
            fmm_potential(rng.uniform(size=(10, 3)), np.ones(10))
        with pytest.raises(ValueError):
            fmm_potential(rng.uniform(size=(10, 2)), np.ones(9))
        with pytest.raises(ValueError):
            fmm_potential(rng.uniform(size=(10, 2)), np.ones(10), p=0)


class TestField:
    def test_matches_direct_field(self, rng):
        from repro.fmm import fmm_field
        from repro.fmm.fmm2d import _direct_field

        pts = rng.uniform(0, 1, (600, 2))
        q = rng.normal(size=600)
        z = pts[:, 0] + 1j * pts[:, 1]
        w = fmm_field(pts, q, p=10)
        exact = _direct_field(z, z, q)
        assert np.abs(w - exact).max() / np.abs(exact).max() < 1e-4

    def test_field_is_potential_gradient(self, rng):
        """dφ/dz from the FMM matches a numerical derivative of the FMM
        potential (consistency between the two evaluators)."""
        from repro.fmm import fmm_field, fmm_potential

        pts = rng.uniform(0, 1, (300, 2))
        q = rng.normal(size=300)
        w = fmm_field(pts, q, p=12)
        h = 1e-6
        # Numerical x-derivative of φ at a few probe points: Re(dφ/dz).
        for i in (0, 77, 150):
            probe_hi = pts.copy()
            probe_hi[i, 0] += h
            probe_lo = pts.copy()
            probe_lo[i, 0] -= h
            # use direct potential for the probes (exact reference)
            from repro.fmm import direct_potential

            z_hi = probe_hi[:, 0] + 1j * probe_hi[:, 1]
            z_lo = probe_lo[:, 0] + 1j * probe_lo[:, 1]
            dphi = (direct_potential(z_hi[i:i + 1], z_hi, q)[0]
                    - direct_potential(z_lo[i:i + 1], z_lo, q)[0]) / (2 * h)
            assert w[i].real == pytest.approx(dphi, rel=1e-3, abs=1e-6)

    def test_two_vortex_symmetry(self):
        """Two equal vortices orbit: velocities are equal and opposite."""
        from repro.fmm import fmm_field

        pos = np.array([[0.0, 0.0], [1.0, 0.0]])
        gamma = np.array([1.0, 1.0])
        # The two points land in well-separated cells, so the answer goes
        # through M2L with ~0.47^p truncation error.
        w = fmm_field(pos, gamma, p=16)
        assert w[0] == pytest.approx(-w[1], rel=1e-4)
        assert w[1] == pytest.approx(1.0 + 0j, rel=1e-4)


class TestGrid:
    def test_binning_covers_all_points(self, rng):
        pts = rng.uniform(0, 1, (500, 2))
        grid = UniformGrid.build(pts)
        total = sum(len(v) for v in grid.cell_points.values())
        assert total == 500

    def test_interaction_list_well_separated(self, rng):
        pts = rng.uniform(0, 1, (500, 2))
        grid = UniformGrid.build(pts)
        L = grid.levels
        for (i, j) in [(2, 2), (0, 0), (3, 5)]:
            for (a, b) in grid.interaction_list(L, i, j):
                assert max(abs(a - i), abs(b - j)) >= 2  # not adjacent
                assert max(abs((a >> 1) - (i >> 1)),
                           abs((b >> 1) - (j >> 1))) <= 1  # parent-adjacent

    def test_neighbours_at_corner(self, rng):
        grid = UniformGrid.build(rng.uniform(0, 1, (100, 2)))
        nb = grid.neighbours(grid.levels, 0, 0)
        assert len(nb) == 3

    def test_centers_grid_shape(self, rng):
        grid = UniformGrid.build(rng.uniform(0, 1, (100, 2)))
        m = grid.cells_at(grid.levels)
        assert grid.centers_grid(grid.levels).shape == (m, m)
