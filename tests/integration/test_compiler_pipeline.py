"""Integration: the compiler pipeline end-to-end — IR stage dumps carry
the expected transformations for the paper's two worked examples (nearest
neighbor, Fig. 2; KDE, Fig. 3), and the generated artifacts agree with
the IR interpreter on the same inputs."""

import numpy as np
import pytest

from repro.backend.interp import base_case_env, interpret_function
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage


@pytest.fixture
def rng():
    return np.random.default_rng(26)


def nn_program(rng, n=30):
    Q = rng.normal(size=(n, 3))
    R = rng.normal(size=(n + 5, 3))
    e = PortalExpr("nearest-neighbor")
    e.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
    e.addLayer(PortalOp.ARGMIN, Storage(R, name="reference"),
               PortalFunc.EUCLIDEAN)
    return Q, R, e


def kde_program(rng, n=30):
    Q = rng.normal(size=(n, 3))
    R = rng.normal(size=(n + 5, 3))
    e = PortalExpr("kernel-density-estimation")
    e.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
    e.addLayer(PortalOp.SUM, Storage(R, name="reference"),
               PortalFunc.GAUSSIAN, bandwidth=1.0)
    return Q, R, e


class TestFig2NearestNeighbor:
    def test_stage_progression(self, rng):
        _, _, e = nn_program(rng)
        e.compile()
        lowered = e.ir_dump("lowered")
        final = e.ir_dump("final")
        # Lowered: pow calls and 2-D loads (blue boxes of Fig. 2).
        assert "pow(" in lowered
        # Final: flattened strided loads + strength-reduced forms (yellow
        # and green boxes of Fig. 2).
        assert "stride" in final
        assert "fast_inverse_sqrt" in final
        assert "pow(" not in final

    def test_prune_problem_has_no_approximation(self, rng):
        _, _, e = nn_program(rng)
        e.compile()
        assert e.program.classification.is_pruning
        assert "no approximation" in e.ir_dump("final")

    def test_no_numerical_optimisation_for_nn(self, rng):
        """Fig. 2 note: NN doesn't use Mahalanobis, so the numerical
        optimisation pass must not fire."""
        _, _, e = nn_program(rng)
        e.compile()
        pm = e.program.pass_manager
        assert pm.stage("numopt").meta["numerical_optimized"] is False


class TestFig3KDE:
    def test_gaussian_in_ir(self, rng):
        _, _, e = kde_program(rng)
        e.compile()
        assert "exp(" in e.ir_dump("lowered")

    def test_approximation_machinery_present(self, rng):
        _, _, e = kde_program(rng)
        e.compile(tau=1e-3)
        final = e.ir_dump("final")
        assert "band_hi" in final or "band_lo" in final
        assert "node_weight" in final

    def test_mahalanobis_numopt_fires_for_mahalanobis_kde(self, rng):
        Q = rng.normal(size=(20, 3))
        e = PortalExpr("kde-mahalanobis")
        e.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
        e.addLayer(PortalOp.MIN, Storage(Q.copy(), name="reference"),
                   PortalFunc.MAHALANOBIS, covariance=np.eye(3))
        e.compile()
        pm = e.program.pass_manager
        assert pm.stage("numopt").meta["numerical_optimized"] is True
        assert "cholesky" in e.ir_dump("numopt")


class TestInterpreterAgreement:
    def test_nn_interpreter_matches_vectorized(self, rng):
        Q, R, e = nn_program(rng, n=20)
        out = e.execute(fastmath=False)
        env = base_case_env("query", "reference", Q, R, "column", "column")
        interpret_function(
            e.program.pass_manager.stage("final")["BaseCase"], env
        )
        # Interpreter stores argmin indices in reference order.
        d = np.sqrt(((Q[:, None, :] - R[None, :, :]) ** 2).sum(-1))
        assert np.array_equal(env["storage0"].astype(int), out.indices)

    def test_kde_interpreter_matches_vectorized(self, rng):
        Q, R, e = kde_program(rng, n=20)
        out = e.execute(tau=0.0, fastmath=False, exclude_self=False)
        env = base_case_env("query", "reference", Q, R, "column", "column")
        interpret_function(
            e.program.pass_manager.stage("final")["BaseCase"], env
        )
        assert np.allclose(env["storage0"], out.values)
