"""Smoke tests: the example scripts run end-to-end.

The fast examples run verbatim (their ``main()`` is imported and called);
the slow simulation examples are covered by unit tests of the same APIs.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.parametrize("name", [
    "quickstart", "portal_language", "custom_kernel", "vortex_dynamics",
    "sliding_window_kde",
])
def test_fast_examples_run(name, capsys):
    mod = load_example(name)
    mod.main()
    out = capsys.readouterr().out
    assert out.strip()


def test_examples_all_have_main():
    for path in EXAMPLES.glob("*.py"):
        source = path.read_text()
        assert "def main()" in source, f"{path.name} lacks main()"
        assert '__name__ == "__main__"' in source, path.name
        assert '"""' in source.split("\n", 1)[0] + source.split("\n", 2)[1], (
            f"{path.name} lacks a module docstring"
        )
