"""Compiler fuzzing: random 2-layer Portal programs must produce
identical results through the tree path and the dense path.

This is the strongest whole-compiler property we can state: for *any*
supported (operator, metric, dimensionality, layout, self-join) combination,
pruning and approximation decisions never change the answer (pruning
problems) or violate the τ bound (approximation problems).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage

pytestmark = pytest.mark.slow

REDUCTIONS = [
    PortalOp.ARGMIN, PortalOp.ARGMAX, PortalOp.MIN, PortalOp.MAX,
    PortalOp.SUM,
]
METRICS = [
    PortalFunc.EUCLIDEAN, PortalFunc.SQREUCDIST, PortalFunc.MANHATTAN,
    PortalFunc.CHEBYSHEV,
]


def run_program(Q, R, op, metric, k, self_join, backend, leaf_size):
    qs = Storage(Q, name="q")
    rs = qs if self_join else Storage(R, name="r")
    e = PortalExpr()
    e.addLayer(PortalOp.FORALL, qs)
    spec = (op, k) if k is not None else op
    e.addLayer(spec, rs, metric)
    out = e.execute(backend=backend, fastmath=False, leaf_size=leaf_size)
    return out


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    nq=st.integers(5, 50),
    nr=st.integers(5, 50),
    dim=st.integers(1, 7),
    op_i=st.integers(0, len(REDUCTIONS) - 1),
    metric_i=st.integers(0, len(METRICS) - 1),
    use_k=st.booleans(),
    self_join=st.booleans(),
    leaf=st.sampled_from([2, 4, 8, 16]),
)
def test_tree_equals_brute_on_random_programs(
    seed, nq, nr, dim, op_i, metric_i, use_k, self_join, leaf
):
    rng = np.random.default_rng(seed)
    Q = rng.normal(size=(nq, dim)) * rng.uniform(0.1, 10)
    R = Q if self_join else rng.normal(size=(nr, dim)) * rng.uniform(0.1, 10)

    op = REDUCTIONS[op_i]
    metric = METRICS[metric_i]
    k = None
    if use_k and op in (PortalOp.ARGMIN, PortalOp.ARGMAX):
        op = PortalOp.KARGMIN if op is PortalOp.ARGMIN else PortalOp.KARGMAX
        k = min(3, (nq if self_join else nr) - 1)
        if k < 1:
            k = 1

    tree = run_program(Q, R, op, metric, k, self_join, "vectorized", leaf)
    brute = run_program(Q, R, op, metric, k, self_join, "brute", leaf)

    tv = np.asarray(tree.values, dtype=float)
    bv = np.asarray(brute.values, dtype=float)
    # Values must agree to numerical noise (the two paths may use
    # different but equally-exact arithmetic orders).
    assert np.allclose(tv, bv, rtol=1e-8, atol=1e-8), (
        f"op={op} metric={metric} self_join={self_join}"
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(20, 80),
    dim=st.integers(1, 5),
    tau=st.sampled_from([0.0, 1e-6, 1e-3, 1e-1]),
)
def test_kde_tau_bound_on_random_programs(seed, n, dim, tau):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, dim)) * rng.uniform(0.1, 5)
    bw = float(X.std()) + 0.1
    s = Storage(X)

    def run(backend):
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, s)
        e.addLayer(PortalOp.SUM, s, PortalFunc.GAUSSIAN, bandwidth=bw)
        return e.execute(backend=backend, tau=tau, fastmath=False,
                         leaf_size=4, exclude_self=False).values

    tree = run("vectorized")
    dense = run("brute")
    assert np.abs(tree - dense).max() <= tau * n + 1e-9


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(10, 60),
    dim=st.integers(1, 5),
    h=st.floats(0.1, 5.0),
)
def test_counting_is_exact_on_random_programs(seed, n, dim, h):
    from repro.baselines import brute
    from repro.problems import two_point_correlation

    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, dim))
    assert two_point_correlation(X, h, leaf_size=4) == \
        brute.brute_two_point(X, h)
