"""Integration: the Prune/Approximate *IR* agrees with the generated
runtime closures on real tree metadata.

The IR functions are documentation-grade artifacts (Figs 2–3), but they
must also be *true*: interpreting the PruneApprox IR over a node pair's
bounding-box metadata has to reach the same decision as the compiled
``prune_or_approx`` closure the traversal actually runs.
"""

import numpy as np
import pytest

from repro.backend.interp import interpret_function
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage


@pytest.fixture
def rng():
    return np.random.default_rng(32)


def _metadata_env(prog, qi, ri, extra=None):
    qtree, rtree = prog.qtree, prog.rtree
    env = {
        "dim": qtree.dim,
        "N1_min": qtree.lo[qi], "N1_max": qtree.hi[qi],
        "N2_min": rtree.lo[ri], "N2_max": rtree.hi[ri],
        "N1": qi, "N2": ri,
    }
    env.update(extra or {})
    return env


class TestPruneIRAgreement:
    def test_knn_bound_prune(self, rng):
        Q = rng.normal(size=(120, 3))
        R = rng.normal(size=(140, 3))
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
        e.addLayer(PortalOp.ARGMIN, Storage(R, name="reference"),
                   PortalFunc.EUCLIDEAN)
        prog = e.compile(fastmath=False, leaf_size=8)
        prog.run()

        ns = prog.kernels.namespace
        best = ns["best"]
        qstart, qend = prog.qtree.start, prog.qtree.end
        prune_ir = prog.pass_manager.stage("final")["PruneApprox"]

        def node_bound(n1):
            return best[qstart[n1]:qend[n1]].max()

        for qi in prog.qtree.leaves()[:8]:
            for ri in prog.rtree.leaves()[:8]:
                runtime = ns["prune_or_approx"](int(qi), int(ri))
                # The deferral optimisation keeps runtime bounds in base
                # (squared) units while the IR compares g(t) = sqrt(t)
                # against B(N_q); supplying the bound in g units makes
                # the two comparisons decision-equivalent.
                ir_val = interpret_function(prune_ir, _metadata_env(
                    prog, int(qi), int(ri), extra={
                        "node_bound":
                            lambda n1, b=node_bound: float(np.sqrt(b(n1))),
                        "band_lo": lambda lo_v, hi_v: min(lo_v, hi_v),
                        "band_hi": lambda lo_v, hi_v: max(lo_v, hi_v),
                    },
                ))
                assert (float(ir_val) != 0.0) == (runtime == 1)

    def test_kde_band_approx(self, rng):
        X = rng.uniform(0, 10, size=(300, 3))
        e = PortalExpr()
        s = Storage(X, name="data")
        e.addLayer(PortalOp.FORALL, s)
        e.addLayer(PortalOp.SUM, s, PortalFunc.GAUSSIAN, bandwidth=0.5)
        prog = e.compile(tau=1e-3, leaf_size=16, exclude_self=False)
        prog.run()

        ns = prog.kernels.namespace
        prune_ir = prog.pass_manager.stage("final")["PruneApprox"]
        leaves = prog.qtree.leaves()
        checked = both = 0
        for qi in leaves[:10]:
            for ri in leaves[:10]:
                runtime = ns["prune_or_approx"](int(qi), int(ri))
                env = _metadata_env(prog, int(qi), int(ri), extra={
                    "band_lo": lambda a, b: min(a, b),
                    "band_hi": lambda a, b: max(a, b),
                })
                # Interpreting the approx IR must not *execute* the
                # contribution (the runtime closure mutates acc), so we
                # only compare the condition value.
                ir_val = interpret_function(prune_ir, env)
                checked += 1
                if (float(ir_val) != 0.0) == (runtime == 2):
                    both += 1
        assert both == checked  # exact condition agreement
