"""Integration coverage for the less-travelled operator paths and
execution configurations."""

import numpy as np
import pytest

from repro.dsl import (
    PortalExpr, PortalFunc, PortalOp, Storage, Var, indicator, pow, sqrt,
)


@pytest.fixture
def rng():
    return np.random.default_rng(28)


class TestUnionValues:
    def test_union_collects_passing_values(self, rng):
        # UNION with an indicator kernel collects the kernel values (1.0)
        # of passing pairs — its length equals the range count.
        Q = rng.normal(size=(40, 3))
        R = rng.normal(size=(50, 3))
        q, r = Var("q"), Var("r")
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, q, Storage(Q))
        e.addLayer(PortalOp.UNION, r, Storage(R),
                   indicator(sqrt(pow(q - r, 2)) < 1.0))
        out = e.execute()
        d = np.sqrt(((Q[:, None, :] - R[None, :, :]) ** 2).sum(-1))
        for i, vals in enumerate(out.values):
            assert len(vals) == int((d[i] < 1.0).sum())
            assert all(v == 1.0 for v in np.atleast_1d(vals)) or len(vals) == 0


class TestKMaxFamilies:
    def test_kmax_keeps_largest_sorted_desc(self, rng):
        Q = rng.normal(size=(25, 3))
        R = rng.normal(size=(30, 3))
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, Storage(Q))
        e.addLayer((PortalOp.KMAX, 4), Storage(R), PortalFunc.EUCLIDEAN)
        out = e.execute(fastmath=False)
        d = np.sqrt(((Q[:, None, :] - R[None, :, :]) ** 2).sum(-1))
        expected = np.sort(d, axis=1)[:, ::-1][:, :4]
        assert np.allclose(out.values, expected)
        assert np.all(np.diff(out.values, axis=1) <= 1e-12)

    def test_kargmax_indices(self, rng):
        Q = rng.normal(size=(20, 3))
        R = rng.normal(size=(25, 3))
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, Storage(Q))
        e.addLayer((PortalOp.KARGMAX, 3), Storage(R), PortalFunc.EUCLIDEAN)
        out = e.execute(fastmath=False)
        d = np.sqrt(((Q[:, None, :] - R[None, :, :]) ** 2).sum(-1))
        expected_vals = np.sort(d, axis=1)[:, ::-1][:, :3]
        got_vals = np.take_along_axis(d, np.asarray(out.indices), axis=1)
        assert np.allclose(got_vals, expected_vals)

    def test_kmin_equals_kargmin_values(self, rng):
        Q = rng.normal(size=(20, 3))
        R = rng.normal(size=(25, 3))

        def run(op):
            e = PortalExpr()
            e.addLayer(PortalOp.FORALL, Storage(Q))
            e.addLayer((op, 3), Storage(R), PortalFunc.EUCLIDEAN)
            return e.execute(fastmath=False).values

        assert np.allclose(run(PortalOp.KMIN), run(PortalOp.KARGMIN))


class TestOtherMetricsEndToEnd:
    @pytest.mark.parametrize("func,reduce_fn", [
        (PortalFunc.MANHATTAN, lambda D: np.abs(D).sum(-1)),
        (PortalFunc.CHEBYSHEV, lambda D: np.abs(D).max(-1)),
    ])
    def test_min_distance(self, rng, func, reduce_fn):
        Q = rng.normal(size=(40, 3))
        R = rng.normal(size=(50, 3))
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, Storage(Q))
        e.addLayer(PortalOp.MIN, Storage(R), func)
        out = e.execute(fastmath=False)
        D = Q[:, None, :] - R[None, :, :]
        assert np.allclose(out.values, reduce_fn(D).min(axis=1))

    def test_manhattan_high_dim(self, rng):
        Q = rng.normal(size=(30, 7))
        R = rng.normal(size=(35, 7))
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, Storage(Q))
        e.addLayer(PortalOp.MIN, Storage(R), PortalFunc.MANHATTAN)
        out = e.execute(fastmath=False)
        D = np.abs(Q[:, None, :] - R[None, :, :]).sum(-1)
        assert np.allclose(out.values, D.min(axis=1))


class TestOctreeThroughDSL:
    def test_knn_on_octree(self, rng):
        X = rng.normal(size=(200, 3))
        e = PortalExpr()
        s = Storage(X)
        e.addLayer(PortalOp.FORALL, s)
        e.addLayer(PortalOp.ARGMIN, s, PortalFunc.EUCLIDEAN)
        out = e.execute(tree="octree", fastmath=False)
        d = np.sqrt(((X[:, None, :] - X[None, :, :]) ** 2).sum(-1))
        np.fill_diagonal(d, np.inf)
        assert np.allclose(out.values, d.min(axis=1))


class TestProdOperator:
    def test_prod_of_kernel_values(self, rng):
        # Π over a kernel bounded in (0, 1]: product of Gaussians.
        Q = rng.normal(size=(10, 3))
        R = rng.normal(size=(12, 3))
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, Storage(Q))
        e.addLayer(PortalOp.PROD, Storage(R), PortalFunc.GAUSSIAN,
                   bandwidth=2.0)
        out = e.execute(exclude_self=False)
        d2 = ((Q[:, None, :] - R[None, :, :]) ** 2).sum(-1)
        expected = np.exp(-d2 / 8.0).prod(axis=1)
        assert np.allclose(out.values, expected, rtol=1e-6)


class TestIrStagesAccessor:
    def test_ir_stages_renders_all(self, rng):
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, Storage(rng.normal(size=(20, 3))))
        e.addLayer(PortalOp.ARGMIN, Storage(rng.normal(size=(20, 3))),
                   PortalFunc.EUCLIDEAN)
        prog = e.compile()
        text = prog.ir_stages("BaseCase")
        for stage in ("lowered", "flattened", "numopt", "strength", "final"):
            assert f"stage: {stage}" in text
