"""Integration: compiler-generated code and hand-optimised expert code
compute identical answers on every Table-IV problem (the correctness half
of the Table-IV comparison; the benchmark harness measures the times)."""

import numpy as np
import pytest

from repro.baselines.expert import (
    expert_emst, expert_hausdorff, expert_kde, expert_knn,
    expert_range_count,
)
from repro.data import load
from repro.problems import (
    directed_hausdorff, emst, kde, knn, range_count,
)


@pytest.fixture(scope="module")
def datasets():
    return {name: load(name, 800, seed=3)
            for name in ("Yahoo!", "IHEPC", "HIGGS")}


class TestEquivalence:
    @pytest.mark.parametrize("name", ["Yahoo!", "IHEPC", "HIGGS"])
    def test_knn(self, datasets, name):
        X = datasets[name]
        Q, R = X[:300], X[300:]
        d_p, _ = knn(Q, R, k=5, fastmath=False)
        d_e, _ = expert_knn(Q, R, k=5)
        assert np.allclose(d_p, d_e, atol=1e-6)

    @pytest.mark.parametrize("name", ["Yahoo!", "IHEPC"])
    def test_kde_exact(self, datasets, name):
        X = datasets[name]
        Q, R = X[:300], X[300:]
        bw = float(np.std(R)) * 2
        p = kde(Q, R, bandwidth=bw, tau=0.0, fastmath=False)
        e = expert_kde(Q, R, bandwidth=bw, tau=0.0)
        assert np.allclose(p, e, rtol=1e-9)

    @pytest.mark.parametrize("name", ["Yahoo!", "IHEPC"])
    def test_range_count(self, datasets, name):
        X = datasets[name]
        Q, R = X[:300], X[300:]
        h = float(np.std(R)) * 1.5
        assert np.array_equal(range_count(Q, R, h=h),
                              expert_range_count(Q, R, h=h))

    def test_hausdorff(self, datasets):
        X = datasets["IHEPC"]
        A, B = X[:400], X[400:]
        assert directed_hausdorff(A, B, fastmath=False) == pytest.approx(
            expert_hausdorff(A, B), abs=1e-6
        )

    def test_emst(self, datasets):
        X = datasets["Yahoo!"][:400]
        res = emst(X)
        _, _, total = expert_emst(X)
        assert res.total_weight == pytest.approx(total, rel=1e-9)


class TestBackendAgreement:
    """All three execution paths (tree, brute, parallel tree) agree."""

    def test_three_ways_knn(self, datasets):
        X = datasets["HIGGS"]
        Q, R = X[:200], X[200:600]
        d_tree, _ = knn(Q, R, k=3, fastmath=False)
        d_brute, _ = knn(Q, R, k=3, fastmath=False, backend="brute")
        d_par, _ = knn(Q, R, k=3, fastmath=False, parallel=True, workers=3)
        assert np.allclose(d_tree, d_brute)
        assert np.allclose(d_tree, d_par)

    def test_tree_types_agree(self, datasets):
        X = datasets["IHEPC"]
        Q, R = X[:200], X[200:600]
        d_kd, _ = knn(Q, R, k=2, fastmath=False, tree="kd")
        d_ball, _ = knn(Q, R, k=2, fastmath=False, tree="ball")
        assert np.allclose(d_kd, d_ball)
