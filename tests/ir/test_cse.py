"""Tests for the common-subexpression-elimination pass."""

import numpy as np
import pytest

from repro.dsl.expr import BinOp, Const
from repro.ir.nodes import (
    Assign, AugAssign, Block, IRCall, IRFunction, IRProgram, LoadExpr,
    ReturnStmt, SymRef,
)
from repro.ir.passes import common_subexpression_eliminate


def prog_of(stmts):
    return IRProgram({"F": IRFunction("F", (), Block(stmts))})


class TestCSE:
    def test_squared_expression_hoisted(self):
        big = BinOp("-", LoadExpr("a", (SymRef("i"),)),
                    LoadExpr("b", (SymRef("i"),)))
        p = prog_of([Assign("t", BinOp("*", big, big))])
        out = common_subexpression_eliminate(p)
        stmts = out["F"].body.stmts
        assert len(stmts) == 2
        assert stmts[0].target.startswith("cse")
        assert repr(stmts[1].value).count("load") == 0

    def test_leaf_repeats_untouched(self):
        # Repeated bare SymRefs are not worth a temporary.
        p = prog_of([Assign("t", BinOp("*", SymRef("x"), SymRef("x")))])
        out = common_subexpression_eliminate(p)
        assert len(out["F"].body.stmts) == 1

    def test_augassign_handled(self):
        big = IRCall("abs", (BinOp("-", SymRef("x"), SymRef("y")),))
        p = prog_of([AugAssign("t", "+", BinOp("*", big, big))])
        out = common_subexpression_eliminate(p)
        assert len(out["F"].body.stmts) == 2

    def test_no_repeats_no_change(self):
        p = prog_of([Assign("t", BinOp("+", SymRef("x"), SymRef("y")))])
        out = common_subexpression_eliminate(p)
        assert len(out["F"].body.stmts) == 1

    def test_semantics_preserved(self):
        from repro.backend.interp import interpret_function

        big = BinOp("-", LoadExpr("a", (Const(1.0),)),
                    LoadExpr("b", (Const(0.0),)))
        p = prog_of([
            Assign("t", BinOp("*", big, big)),
            ReturnStmt(SymRef("t")),
        ])
        env = {"a": np.array([1.0, 5.0]), "b": np.array([2.0])}
        before = interpret_function(p["F"], dict(env))
        after = interpret_function(
            common_subexpression_eliminate(p)["F"], dict(env)
        )
        assert before == after == 9.0

    def test_nested_loops_reached(self):
        from repro.ir.nodes import For

        big = BinOp("-", LoadExpr("a", (SymRef("d"),)),
                    LoadExpr("b", (SymRef("d"),)))
        p = prog_of([
            For("d", Const(0), Const(3), Block([
                AugAssign("t", "+", BinOp("*", big, big)),
            ])),
        ])
        out = common_subexpression_eliminate(p)
        loop = out["F"].body.stmts[0]
        assert len(loop.body.stmts) == 2

    def test_full_pipeline_produces_cse_temps(self):
        from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage

        rng = np.random.default_rng(0)
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, Storage(rng.normal(size=(20, 3))))
        e.addLayer(PortalOp.ARGMIN, Storage(rng.normal(size=(20, 3))),
                   PortalFunc.EUCLIDEAN)
        e.compile()
        assert "cse" in e.ir_dump("final")
        assert "cse" not in e.ir_dump("strength")
