"""Property-based differential fuzzing of the IR optimisation pipeline.

Seeded random well-typed Portal programs run through every subset of the
toggleable optimisation passes (2^6 = 64 subsets) with the structural
verifier on.  Two properties per (program, subset) case:

* the vectorized backend's output is **bit-identical** across subsets —
  its generated NumPy kernel must not depend on which IR passes ran;
* the interpreter backend — which executes the optimised IR directly —
  agrees with the vectorized reference to float tolerance, so no pass
  subset changes what a program computes.

Generated kernels maintain a closure invariant: every subexpression is
finite and non-negative on all inputs, so no case can hit a numerical
domain error (``sqrt`` of a negative, division by zero, ``pow`` of a
negative base) and mask a real miscompile behind a NaN-vs-NaN match.

The fast tier runs 4 programs x 64 subsets = 256 cases; the slow tier
(``-m slow``) sweeps 32 programs x 64 subsets = 2048 cases.
"""

import itertools

import numpy as np
import pytest

from repro.dsl import (
    Const, Expr, PortalExpr, PortalFunc, PortalOp, Storage, Var, exp,
    indicator, pow, sqrt,
)
from repro.ir.passes import TOGGLEABLE_PASSES

from tests.backend.test_differential import _assert_same, _extract

ALL_SUBSETS = [
    tuple(c)
    for n in range(len(TOGGLEABLE_PASSES) + 1)
    for c in itertools.combinations(TOGGLEABLE_PASSES, n)
]
assert len(ALL_SUBSETS) == 64


# -- random well-typed kernel expressions ------------------------------------

def _gen_kernel(rng):
    """A random kernel over Vars q, r; every subexpression is finite and
    non-negative for all real inputs (closure invariant, see module doc)."""
    q, r = Var("q"), Var("r")
    d2 = pow(q - r, 2)  # squared distance: the non-negative seed leaf

    def leaf():
        if rng.random() < 0.7:
            return d2
        return Const(float(rng.integers(1, 5)) / 2.0)

    def grow(depth):
        if depth <= 0:
            return leaf()
        op = rng.choice(
            ["add", "mul", "sqrt", "exp_neg", "pow_int", "shift_pow",
             "div_const", "indicator"]
        )
        if op == "add":
            return grow(depth - 1) + grow(depth - 1)
        if op == "mul":
            return grow(depth - 1) * grow(depth - 1)
        if op == "sqrt":
            return sqrt(grow(depth - 1))
        if op == "exp_neg":
            # exp(-x / c): bounded in (0, 1] for non-negative x.
            return exp(-(grow(depth - 1)) / float(rng.integers(2, 6)))
        if op == "pow_int":
            return pow(grow(depth - 1), float(rng.integers(2, 4)))
        if op == "shift_pow":
            # Plummer-style softening: (x + c)^-1/2 with c > 0.
            return pow(grow(depth - 1) + 0.25, -0.5)
        if op == "div_const":
            return grow(depth - 1) / float(rng.integers(1, 4))
        if op == "indicator":
            return indicator(grow(depth - 1) < float(rng.integers(1, 4)))
        raise AssertionError(op)

    k = grow(int(rng.integers(1, 4)))
    if not _depends_on_data(k):
        # An all-constant kernel exercises nothing; anchor it to the
        # squared distance (preserves the non-negativity invariant).
        k = k + d2
    return k


def _depends_on_data(e):
    if isinstance(e, Var):
        return True
    children = (getattr(e, a, None) for a in ("lhs", "rhs", "operand"))
    return any(isinstance(c, Expr) and _depends_on_data(c) for c in children)


_NAMED = [
    (PortalFunc.EUCLIDEAN, {}),
    (PortalFunc.GAUSSIAN, {"bandwidth": 0.9}),
]

_SHAPES = [
    (PortalOp.FORALL, PortalOp.SUM, "values"),
    (PortalOp.FORALL, PortalOp.MIN, "values"),
    (PortalOp.FORALL, PortalOp.MAX, "values"),
    (PortalOp.MAX, PortalOp.MIN, "scalar"),
    (PortalOp.SUM, PortalOp.SUM, "scalar"),
]


def make_fuzz_problem(seed):
    """Seeded random two-layer problem: ``(build, kind, opts)``, same
    contract as ``test_differential.make_problem``."""
    rng = np.random.default_rng(seed)
    nq, nr = int(rng.integers(6, 10)), int(rng.integers(7, 11))
    d = int(rng.integers(2, 4))
    Q, R = rng.normal(size=(nq, d)), rng.normal(size=(nr, d))
    outer, inner, kind = _SHAPES[int(rng.integers(0, len(_SHAPES)))]
    if rng.random() < 0.25:
        func, params = _NAMED[int(rng.integers(0, len(_NAMED)))]
    else:
        func, params = _gen_kernel(rng), {}
    opts = dict(params)
    if inner is PortalOp.SUM:
        opts["tau"] = 0.0

    def build():
        e = PortalExpr()
        q, r = Var("q"), Var("r")
        e.addLayer(outer, q, Storage(Q, name="query"))
        e.addLayer(inner, r, Storage(R, name="reference"), func, **opts)
        return e

    exec_opts = {"tau": 0.0} if inner is PortalOp.SUM else {}
    return build, kind, exec_opts


def _sweep(seed):
    """One fuzz case-family: a seeded program checked across all 64
    pass subsets on both backends."""
    build, kind, opts = make_fuzz_problem(seed)
    vec_ref_out = build().execute(
        backend="vectorized", fastmath=False, cache=False, **opts)
    vec_ref = _extract(vec_ref_out, kind)
    for subset in ALL_SUBSETS:
        vec = _extract(
            build().execute(backend="vectorized", fastmath=False,
                            cache=False, disable_passes=subset, **opts),
            kind)
        # Bit-identical: the vectorized kernel may not depend on the
        # IR pass pipeline at all.
        if kind == "scalar":
            assert vec == vec_ref, (seed, subset)
        else:
            assert np.array_equal(vec, vec_ref), (seed, subset)
        got = _extract(
            build().execute(backend="interp", fastmath=False,
                            cache=False, disable_passes=subset, **opts),
            kind)
        _assert_same(got, vec_ref, kind)


FAST_SEEDS = [9001, 9002, 9003, 9004]
SLOW_SEEDS = [7000 + i for i in range(32)]


def _sweep_native(seed):
    """Native-backend leg: every generated program also runs through the
    native scalar emitter and must match the NumPy reference (the
    emitter sees arbitrary strength-reduced kernel trees here, not just
    the named problems' shapes)."""
    build, kind, opts = make_fuzz_problem(seed)
    ref = _extract(
        build().execute(fastmath=False, cache=False, **opts), kind)
    got = _extract(
        build().execute(codegen="native", fastmath=False, cache=False,
                        **opts), kind)
    _assert_same(got, ref, kind)


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_fuzz_pass_subsets_fast(seed):
    _sweep(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_fuzz_pass_subsets_slow(seed):
    _sweep(seed)


@pytest.fixture()
def _native_leg(monkeypatch):
    from repro.backend.native import native_available

    if not native_available():
        # No numba on this host: run the emitted loop nests as plain
        # Python so the native emitter is still differentially covered.
        monkeypatch.setenv("REPRO_NATIVE_JIT", "python")


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_fuzz_native_backend_fast(seed, _native_leg):
    _sweep_native(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_fuzz_native_backend_slow(seed, _native_leg):
    _sweep_native(seed)


def test_generator_is_deterministic():
    # Same seed must build the same program, or failures wouldn't repro.
    b1, k1, o1 = make_fuzz_problem(1234)
    b2, k2, o2 = make_fuzz_problem(1234)
    assert (k1, o1) == (k2, o2)
    r1 = _extract(b1().execute(fastmath=False, cache=False, **o1), k1)
    r2 = _extract(b2().execute(fastmath=False, cache=False, **o2), k2)
    _assert_same(r1, r2, k1)


def test_generator_produces_varied_shapes():
    kinds = {make_fuzz_problem(s)[1] for s in range(40)}
    assert kinds == {"values", "scalar"}
