"""Golden IR tests: pin the printed IR of each evaluated problem after
every pass stage of the optimisation pipeline.

The goldens make pass changes reviewable — a pipeline edit shows up as a
readable textual diff instead of a silent behaviour change.  Regenerate
with::

    PYTHONPATH=src python -m pytest tests/ir/test_golden_ir.py --update-golden
"""

from pathlib import Path

import numpy as np
import pytest

from repro.ir.lowering import lower
from repro.ir.passes import PIPELINE_STAGES, PassManager
from repro.ir.printer import render_program
from repro.rules import build_rules

from tests.backend.test_differential import make_problem

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

# The nine evaluated problems (naive_bayes lowers identically to kde up
# to the bandwidth constant, so it adds no distinct golden).
PROBLEMS = ["knn", "nearest", "kde", "range_search", "range_count",
            "hausdorff", "two_point", "em", "barnes_hut"]

SEED = 101


def _pipeline_dump(name: str) -> str:
    build, _, _ = make_problem(name, SEED)
    e = build()
    e.validate()
    kernel = e.layers[-1].metric_kernel
    cls, rule = build_rules(e.layers, kernel)
    lowered = lower(e.layers, kernel, cls, rule, name)
    pm = PassManager(fastmath=True, verify=True)
    pm.run(lowered)
    chunks = []
    for stage in PIPELINE_STAGES:
        prog = pm.snapshots[stage]
        chunks.append(f"=== stage: {stage} " + "=" * 40)
        chunks.append(render_program(prog))
        chunks.append("")
    return "\n".join(chunks)


@pytest.mark.parametrize("name", PROBLEMS)
def test_golden_ir(name, request):
    dump = _pipeline_dump(name)
    path = GOLDEN_DIR / f"{name}.ir"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(dump)
        pytest.skip(f"updated {path.name}")
    assert path.exists(), (
        f"missing golden {path}; run with --update-golden to create it"
    )
    expected = path.read_text()
    assert dump == expected, (
        f"IR pipeline output for {name!r} drifted from {path.name}; "
        "inspect the diff and re-run with --update-golden if intended"
    )


def test_dump_is_deterministic():
    # Same seed, two fresh compilations: the printed pipeline must be
    # byte-identical, otherwise the goldens would flake.
    assert _pipeline_dump("kde") == _pipeline_dump("kde")


def test_golden_covers_all_stages():
    dump = _pipeline_dump("knn")
    for stage in PIPELINE_STAGES:
        assert f"=== stage: {stage} " in dump
