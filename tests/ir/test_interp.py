"""The IR interpreter as reference semantics: interpreting the *final*
(optimised) BaseCase IR over full datasets must match an independent
NumPy brute-force computation — proving the pass pipeline preserves the
program's meaning end-to-end."""

import numpy as np
import pytest

from repro.backend.interp import base_case_env, interpret_function
from repro.baselines import brute
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage


@pytest.fixture
def rng():
    return np.random.default_rng(9)


def compiled(rng, inner_op, nq=15, nr=18, d=3, func=PortalFunc.EUCLIDEAN,
             fastmath=False, **params):
    Q = rng.normal(size=(nq, d))
    R = rng.normal(size=(nr, d))
    e = PortalExpr("t")
    e.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
    e.addLayer(inner_op, Storage(R, name="reference"), func, **params)
    prog = e.compile(fastmath=fastmath)
    return Q, R, prog


def run_base_case(prog, Q, R, extra=None):
    env = base_case_env("query", "reference", Q, R,
                        "column" if Q.shape[1] <= 4 else "row",
                        "column" if R.shape[1] <= 4 else "row",
                        extra=extra)
    fn = prog.pass_manager.stage("final")["BaseCase"]
    return interpret_function(fn, env)


class TestInterpreterVsBrute:
    def test_argmin_euclidean(self, rng):
        Q, R, prog = compiled(rng, PortalOp.ARGMIN)
        env = run_base_case(prog, Q, R)
        db, ib = brute.brute_knn(Q, R, k=1)
        assert np.array_equal(env["storage0"], ib.astype(float))

    def test_min_values(self, rng):
        Q, R, prog = compiled(rng, PortalOp.MIN)
        env = run_base_case(prog, Q, R)
        db, _ = brute.brute_knn(Q, R, k=1)
        assert np.allclose(env["storage0"], db)

    def test_sum_gaussian(self, rng):
        Q, R, prog = compiled(rng, PortalOp.SUM, func=PortalFunc.GAUSSIAN,
                              bandwidth=1.3)
        env = run_base_case(prog, Q, R)
        expected = brute.brute_kde(Q, R, bandwidth=1.3)
        assert np.allclose(env["storage0"], expected)

    def test_manhattan_min(self, rng):
        Q, R, prog = compiled(rng, PortalOp.MIN, func=PortalFunc.MANHATTAN)
        env = run_base_case(prog, Q, R)
        expected = np.abs(Q[:, None, :] - R[None, :, :]).sum(-1).min(1)
        assert np.allclose(env["storage0"], expected)

    def test_chebyshev_min(self, rng):
        Q, R, prog = compiled(rng, PortalOp.MIN, func=PortalFunc.CHEBYSHEV)
        env = run_base_case(prog, Q, R)
        expected = np.abs(Q[:, None, :] - R[None, :, :]).max(-1).min(1)
        assert np.allclose(env["storage0"], expected)

    def test_kargmin_rows(self, rng):
        Q, R, prog = compiled(rng, (PortalOp.KARGMIN, 3))
        env = run_base_case(prog, Q, R)
        db, ib = brute.brute_knn(Q, R, k=3)
        rows = env["storage0_rows"]
        got = np.array([rows[i] for i in range(len(Q))])
        assert np.array_equal(got, ib.astype(float))

    def test_row_major_highdim(self, rng):
        Q, R, prog = compiled(rng, PortalOp.ARGMIN, d=8)
        env = run_base_case(prog, Q, R)
        _, ib = brute.brute_knn(Q, R, k=1)
        assert np.array_equal(env["storage0"], ib.astype(float))

    def test_fastmath_ir_approximates(self, rng):
        Q, R, prog = compiled(rng, PortalOp.MIN, fastmath=True)
        env = run_base_case(prog, Q, R)
        db, _ = brute.brute_knn(Q, R, k=1)
        assert np.allclose(env["storage0"], db, rtol=1e-4)

    def test_mahalanobis_final_ir(self, rng):
        cov = np.eye(3) * 2.0
        Q, R, prog = compiled(rng, PortalOp.MIN, func=PortalFunc.MAHALANOBIS,
                              covariance=cov)
        env = run_base_case(prog, Q, R, extra={"Sigma": cov})
        diff = Q[:, None, :] - R[None, :, :]
        maha = np.einsum("ijk,kl,ijl->ij", diff, np.linalg.inv(cov), diff)
        assert np.allclose(env["storage0"], maha.min(1))

    def test_lowered_equals_final(self, rng):
        """Semantic preservation across the whole pipeline."""
        Q, R, prog = compiled(rng, PortalOp.MIN)
        env_low = base_case_env("query", "reference", Q, R, "column", "column")
        # The lowered stage has un-flattened 2-D loads: bind 2-D arrays.
        env_low["query_data"] = Q
        env_low["reference_data"] = R
        low = interpret_function(
            prog.pass_manager.stage("lowered")["BaseCase"], env_low
        )["storage0"]
        final = run_base_case(prog, Q, R)["storage0"]
        assert np.allclose(low, final)


class TestInterpreterStatements:
    def test_union_dynamic_storage(self, rng):
        Q = rng.normal(size=(15, 3))
        R = rng.normal(size=(18, 3))
        from repro.dsl import Var, indicator, pow, sqrt

        q, r = Var("q"), Var("r")
        e = PortalExpr("u")
        e.addLayer(PortalOp.FORALL, q, Storage(Q, name="query"))
        e.addLayer(PortalOp.UNIONARG, r, Storage(R, name="reference"),
                   indicator(sqrt(pow(q - r, 2)) < 1.0))
        prog = e.compile(fastmath=False)
        env = run_base_case(prog, Q, R)
        rows = env["storage0_rows"]
        expected = brute.brute_range_search(Q, R, 1.0)
        for i in range(len(Q)):
            assert sorted(rows.get(i, [])) == sorted(expected[i].tolist())
