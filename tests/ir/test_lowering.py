"""Tests for the lowering stage (sections IV-A and IV-B)."""

import numpy as np
import pytest

from repro.dsl import (
    CompileError, PortalExpr, PortalFunc, PortalOp, Storage,
)
from repro.ir.lowering import kernel_to_ir, lower
from repro.ir.nodes import Alloc, CallStmt, For, IfStmt, IRCall, StoreStmt, SymRef
from repro.rules import build_rules
from repro.dsl.expr import Call, Const, DistVar
from repro.dsl.funcs import MetricKernel


@pytest.fixture
def rng():
    return np.random.default_rng(8)


def make_lowered(rng, inner_op, func=PortalFunc.EUCLIDEAN, outer_op=PortalOp.FORALL,
                 **params):
    e = PortalExpr("test")
    e.addLayer(outer_op, Storage(rng.normal(size=(20, 3)), name="query"))
    e.addLayer(inner_op, Storage(rng.normal(size=(25, 3)), name="reference"),
               func, **params)
    e.validate()
    kernel = e.layers[1].metric_kernel
    cls, rule = build_rules(e.layers, kernel, tau=params.get("tau", 0.0))
    return lower(e.layers, kernel, cls, rule, "test")


class TestKernelToIR:
    def test_distvar_becomes_symref(self):
        out = kernel_to_ir(DistVar("t"))
        assert out == SymRef("t")

    def test_call_becomes_ircall(self):
        out = kernel_to_ir(Call("sqrt", DistVar("t")))
        assert isinstance(out, IRCall) and out.func == "sqrt"

    def test_power_becomes_pow_call(self):
        from repro.dsl.expr import BinOp

        out = kernel_to_ir(BinOp("**", DistVar("t"), Const(2.0)))
        assert isinstance(out, IRCall) and out.func == "pow"


class TestBaseCaseStructure:
    def test_loop_nest_order(self, rng):
        prog = make_lowered(rng, PortalOp.ARGMIN)
        fn = prog["BaseCase"]
        # Outer loop over query, inner loop over reference, innermost dim.
        outer = [s for s in fn.body.stmts if isinstance(s, For)][0]
        inner = [s for s in outer.body.stmts if isinstance(s, For)][0]
        dim_loop = [s for s in inner.body.stmts if isinstance(s, For)][0]
        assert dim_loop.var == "d"

    def test_storage_injection_argmin(self, rng):
        prog = make_lowered(rng, PortalOp.ARGMIN)
        allocs = [s for s in prog["BaseCase"].body.walk() if isinstance(s, Alloc)]
        names = {a.name for a in allocs}
        assert {"storage0", "storage1", "storage1_arg", "t"} <= names

    def test_kargmin_allocates_k_units(self, rng):
        prog = make_lowered(rng, (PortalOp.KARGMIN, 4))
        allocs = {s.name: s for s in prog["BaseCase"].body.walk()
                  if isinstance(s, Alloc)}
        assert allocs["storage1"].size == Const(4.0)

    def test_min_update_is_comparison(self, rng):
        prog = make_lowered(rng, PortalOp.MIN)
        assert any(isinstance(s, IfStmt) for s in prog["BaseCase"].body.walk())

    def test_kargmin_uses_sorted_insert(self, rng):
        prog = make_lowered(rng, (PortalOp.KARGMIN, 3))
        calls = [s.func for s in prog["BaseCase"].body.walk()
                 if isinstance(s, CallStmt)]
        assert "sorted_insert_asc" in calls

    def test_forall_outer_stores(self, rng):
        prog = make_lowered(rng, PortalOp.ARGMIN)
        assert any(isinstance(s, StoreStmt) and s.array == "storage0"
                   for s in prog["BaseCase"].body.walk())

    def test_manhattan_uses_abs(self, rng):
        prog = make_lowered(rng, PortalOp.MIN, PortalFunc.MANHATTAN)
        calls = [e for s in prog["BaseCase"].body.walk() for expr in s.exprs()
                 for e in expr.walk() if isinstance(e, IRCall)]
        assert any(c.func == "abs" for c in calls)

    def test_mahalanobis_lowered_naive(self, rng):
        prog = make_lowered(rng, PortalOp.MIN, PortalFunc.MAHALANOBIS,
                            covariance=np.eye(3))
        calls = [e for s in prog["BaseCase"].body.walk() for expr in s.exprs()
                 for e in expr.walk() if isinstance(e, IRCall)]
        assert any(c.func == "mahalanobis" for c in calls)

    def test_brute_force_generated(self, rng):
        prog = make_lowered(rng, PortalOp.ARGMIN)
        assert "BruteForce" in prog.functions

    def test_three_layers_lower_to_generalized_nest(self, rng):
        e = PortalExpr()
        s = Storage(rng.normal(size=(10, 2)), name="D")
        e.addLayer(PortalOp.SUM, s)
        e.addLayer(PortalOp.SUM, s)
        e.addLayer(PortalOp.SUM, s, PortalFunc.EUCLIDEAN)
        e.validate()
        kernel = e.layers[-1].metric_kernel
        cls, rule = build_rules(e.layers, kernel)
        prog = lower(e.layers, kernel, cls, rule)
        loops = [st for st in prog["BaseCase"].body.walk()
                 if isinstance(st, For)]
        assert len(loops) == 3
        assert prog.meta["m"] == 3
        calls = [ex for st in prog["BaseCase"].body.walk()
                 for expr in st.exprs() for ex in expr.walk()
                 if isinstance(ex, IRCall) and ex.func == "kernel_eval"]
        assert calls


class TestPruneApproxStructure:
    def test_pruning_problem_has_zero_approx(self, rng):
        prog = make_lowered(rng, PortalOp.ARGMIN)
        # ComputeApprox returns 0 for pruning problems (paper Fig. 2).
        from repro.ir.nodes import ReturnStmt

        rets = [s for s in prog["ComputeApprox"].body.stmts
                if isinstance(s, ReturnStmt)]
        assert rets and rets[-1].value == Const(0.0)

    def test_prune_uses_box_metadata(self, rng):
        prog = make_lowered(rng, PortalOp.ARGMIN)
        from repro.ir.nodes import LoadExpr

        loads = {e.array for s in prog["PruneApprox"].body.walk()
                 for expr in s.exprs() for e in expr.walk()
                 if isinstance(e, LoadExpr)}
        assert {"N1_min", "N1_max", "N2_min", "N2_max"} <= loads

    def test_approx_problem_has_band_condition(self, rng):
        prog = make_lowered(rng, PortalOp.SUM, PortalFunc.GAUSSIAN,
                            bandwidth=1.0, tau=0.1)
        calls = [e for s in prog["PruneApprox"].body.walk()
                 for expr in s.exprs() for e in expr.walk()
                 if isinstance(e, IRCall)]
        assert any(c.func in ("band_hi", "band_lo") for c in calls)

    def test_approx_compute_uses_node_weight(self, rng):
        prog = make_lowered(rng, PortalOp.SUM, PortalFunc.GAUSSIAN,
                            bandwidth=1.0, tau=0.1)
        calls = [e for s in prog["ComputeApprox"].body.walk()
                 for expr in s.exprs() for e in expr.walk()
                 if isinstance(e, IRCall)]
        assert any(c.func == "node_weight" for c in calls)
