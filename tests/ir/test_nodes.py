"""Tests for IR node mechanics (expressions, statements, rewriting)."""

import numpy as np
import pytest

from repro.dsl.expr import BinOp, Const
from repro.ir.nodes import (
    Alloc, Assign, AugAssign, Block, For, IfStmt, IRCall, IRFunction,
    IRProgram, LoadExpr, ReturnStmt, StoreStmt, SymRef,
)
from repro.dsl.expr import Indicator


class TestExprLeaves:
    def test_symref_evaluates_from_env(self):
        assert SymRef("x").evaluate({"x": 4.0}) == 4.0

    def test_load_single_index(self):
        arr = np.arange(10.0)
        e = LoadExpr("a", (Const(3.0),))
        assert e.evaluate({"a": arr}) == 3.0

    def test_load_multi_index(self):
        arr = np.arange(12.0).reshape(3, 4)
        e = LoadExpr("a", (Const(1.0), Const(2.0)))
        assert e.evaluate({"a": arr}) == 6.0

    def test_ircall_builtin(self):
        e = IRCall("sqrt", (Const(9.0),))
        assert e.evaluate({}) == 3.0

    def test_ircall_pow(self):
        e = IRCall("pow", (Const(2.0), Const(5.0)))
        assert e.evaluate({}) == 32.0

    def test_ircall_fast_inverse_sqrt(self):
        e = IRCall("fast_inverse_sqrt", (Const(4.0),))
        assert float(e.evaluate({})) == pytest.approx(0.5, rel=1e-4)

    def test_ircall_env_function(self):
        e = IRCall("mystery", (Const(2.0),))
        assert e.evaluate({"mystery": lambda x: x * 10}) == 20.0

    def test_ircall_unknown_raises(self):
        with pytest.raises(KeyError):
            IRCall("nope", ()).evaluate({})

    def test_cholesky_forward_sub(self):
        S = np.array([[4.0, 0.0], [0.0, 9.0]])
        L = IRCall("cholesky", (SymRef("S"),)).evaluate({"S": S})
        assert np.allclose(L, [[2, 0], [0, 3]])
        y = IRCall("forward_sub", (SymRef("L"), SymRef("y"))).evaluate(
            {"L": L, "y": np.array([2.0, 3.0])})
        assert np.allclose(y, [1.0, 1.0])

    def test_mahalanobis_reference(self):
        S = np.eye(2) * 4.0
        y = np.array([2.0, 0.0])
        v = IRCall("mahalanobis", (SymRef("y"), SymRef("S"))).evaluate(
            {"y": y, "S": S})
        assert v == pytest.approx(1.0)


class TestStatementRewriting:
    def _fn(self):
        body = Block([
            Alloc("t", init=Const(0.0)),
            For("d", Const(0), SymRef("dim"), Block([
                AugAssign("t", "+", IRCall("pow", (SymRef("x"), Const(2.0)))),
            ])),
            Assign("out", SymRef("t")),
            ReturnStmt(SymRef("out")),
        ])
        return IRFunction("f", (), body)

    def test_map_exprs_recurses_into_loops(self):
        fn = self._fn()
        seen = []

        def spy(e):
            seen.append(type(e).__name__)
            return e

        fn.map_exprs(spy)
        assert "IRCall" in seen

    def test_map_exprs_rewrites(self):
        fn = self._fn()
        out = fn.map_exprs(
            lambda e: Const(7.0) if isinstance(e, IRCall) else e
        )
        loop = out.body.stmts[1]
        assert isinstance(loop.body.stmts[0].value, Const)

    def test_map_stmts_drop(self):
        fn = self._fn()
        out = fn.map_stmts(lambda s: None if isinstance(s, Assign) else s)
        assert not any(isinstance(s, Assign) for s in out.body.walk())

    def test_map_stmts_splice(self):
        fn = self._fn()
        out = fn.map_stmts(
            lambda s: [s, s] if isinstance(s, Assign) else s
        )
        assert sum(isinstance(s, Assign) for s in out.body.walk()) == 2

    def test_walk_covers_nested(self):
        fn = self._fn()
        kinds = {type(s).__name__ for s in fn.body.walk()}
        assert {"Alloc", "For", "AugAssign", "Assign", "ReturnStmt"} <= kinds

    def test_if_blocks_mapped(self):
        st = IfStmt(Indicator("<", SymRef("a"), Const(1.0)),
                    Block([Assign("x", Const(1.0))]),
                    Block([Assign("x", Const(2.0))]))
        out = st.map_exprs(lambda e: e)
        assert out.orelse is not None

    def test_program_getitem(self):
        fn = self._fn()
        prog = IRProgram({"f": fn})
        assert prog["f"] is fn

    def test_store_stmt_exprs(self):
        st = StoreStmt("a", (Const(0.0),), SymRef("v"))
        assert len(st.exprs()) == 2
