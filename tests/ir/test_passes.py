"""Tests for the optimisation passes: flattening, numerical optimisation,
strength reduction, constant folding, DCE, and the pass manager."""

import numpy as np
import pytest

from repro.dsl.expr import BinOp, Const
from repro.ir.flattening import flatten
from repro.ir.nodes import (
    Alloc, Assign, Block, Comment, IRCall, IRFunction, IRProgram, LoadExpr,
    ReturnStmt, StoreStmt, SymRef,
)
from repro.ir.numerical_opt import numerical_optimize
from repro.ir.passes import PassManager, constant_fold, dead_code_eliminate
from repro.ir.strength_reduction import reduce_expr, strength_reduce


def prog_of(stmts, name="F"):
    return IRProgram({name: IRFunction(name, (), Block(stmts))})


class TestFlattening:
    def test_two_index_load_flattened(self):
        p = prog_of([Assign("x", LoadExpr("a", (SymRef("i"), SymRef("d"))))])
        out = flatten(p)
        load = next(
            e for s in out["F"].body.walk() for expr in s.exprs()
            for e in expr.walk() if isinstance(e, LoadExpr)
        )
        assert len(load.indices) == 1
        names = {n.name for n in load.indices[0].walk() if isinstance(n, SymRef)}
        assert {"a.stride0", "a.stride1", "i", "d"} <= names

    def test_single_index_untouched(self):
        p = prog_of([Assign("x", LoadExpr("a", (SymRef("i"),)))])
        out = flatten(p)
        load = next(
            e for s in out["F"].body.walk() for expr in s.exprs()
            for e in expr.walk() if isinstance(e, LoadExpr)
        )
        assert load.indices == (SymRef("i"),)

    def test_store_flattened(self):
        p = prog_of([StoreStmt("a", (SymRef("i"), SymRef("d")), Const(1.0))])
        out = flatten(p)
        st = next(s for s in out["F"].body.walk() if isinstance(s, StoreStmt))
        assert len(st.indices) == 1

    def test_flattened_semantics_preserved(self):
        # load(a, i, d) over (3,4) row-major == load(flat, i*4+d).
        arr = np.arange(12.0).reshape(3, 4)
        e2d = LoadExpr("a", (Const(2.0), Const(1.0)))
        p = prog_of([Assign("x", e2d)])
        out = flatten(p)
        load = next(
            e for s in out["F"].body.walk() for expr in s.exprs()
            for e in expr.walk() if isinstance(e, LoadExpr)
        )
        env = {"a": arr.ravel(), "a.stride0": 4, "a.stride1": 1}
        assert load.evaluate(env) == arr[2, 1]


class TestNumericalOptimization:
    def _maha_prog(self):
        return prog_of([
            Assign("y", IRCall("point_diff",
                               (SymRef("Q"), SymRef("q"), SymRef("R"),
                                SymRef("r")))),
            Assign("t", IRCall("mahalanobis", (SymRef("y"), SymRef("Sigma")))),
            ReturnStmt(SymRef("t")),
        ])

    def test_mahalanobis_rewritten(self):
        out = numerical_optimize(self._maha_prog())
        funcs = [e.func for s in out["F"].body.walk() for expr in s.exprs()
                 for e in expr.walk() if isinstance(e, IRCall)]
        assert "mahalanobis" not in funcs
        assert "cholesky" in funcs and "forward_sub" in funcs and "dot" in funcs

    def test_cholesky_hoisted_to_entry(self):
        out = numerical_optimize(self._maha_prog())
        non_comment = [s for s in out["F"].body.stmts
                       if not isinstance(s, Comment)]
        first = non_comment[0]
        assert isinstance(first, Assign) and first.target == "L_Sigma"

    def test_meta_flag_set(self):
        out = numerical_optimize(self._maha_prog())
        assert out.meta["numerical_optimized"] is True

    def test_no_mahalanobis_no_change(self):
        p = prog_of([Assign("x", Const(1.0))])
        out = numerical_optimize(p)
        assert out.meta["numerical_optimized"] is False

    def test_semantics_preserved(self):
        """Interpreting pre- and post-pass IR gives the same Mahalanobis value."""
        from repro.ir.nodes import IR_FUNCS, _register_ir_funcs

        if not IR_FUNCS:
            _register_ir_funcs()
        rng = np.random.default_rng(0)
        A = rng.normal(size=(3, 3))
        Sigma = A @ A.T + np.eye(3)
        Q = rng.normal(size=(2, 3))
        R = rng.normal(size=(2, 3))
        env = {
            "Q": Q, "R": R, "q": 0, "r": 1, "Sigma": Sigma,
            "point_diff": lambda Qa, i, Ra, j: Qa[int(i)] - Ra[int(j)],
        }
        from repro.backend.interp import interpret_function

        before = interpret_function(self._maha_prog()["F"], dict(env))
        after = interpret_function(
            numerical_optimize(self._maha_prog())["F"], dict(env)
        )
        assert before == pytest.approx(after, rel=1e-10)


class TestStrengthReduction:
    def test_pow2_becomes_multiply(self):
        e = IRCall("pow", (SymRef("x"), Const(2.0)))
        out = reduce_expr(e)
        assert repr(out) == "(x * x)"

    def test_pow3_becomes_chain(self):
        out = reduce_expr(IRCall("pow", (SymRef("x"), Const(3.0))))
        assert repr(out) == "((x * x) * x)"

    def test_pow4_binary_exponentiation(self):
        out = reduce_expr(IRCall("pow", (SymRef("x"), Const(4.0))))
        assert repr(out) == "((x * x) * (x * x))"
        # The square is one shared sub-tree object, not a duplicated copy:
        # the emitter's value numbering materialises it once.
        assert out.lhs is out.rhs

    def test_pow8_two_squarings(self):
        out = reduce_expr(IRCall("pow", (SymRef("x"), Const(8.0))))
        assert out.lhs is out.rhs and out.lhs.lhs is out.lhs.rhs

    def test_pow9_kept(self):
        out = reduce_expr(IRCall("pow", (SymRef("x"), Const(9.0))))
        assert isinstance(out, IRCall) and out.func == "pow"

    def test_pow1_is_operand(self):
        out = reduce_expr(IRCall("pow", (SymRef("x"), Const(1.0))))
        assert out == SymRef("x")

    def test_statement_pass_hoists_shared_operand(self):
        # pow(load-load, 2) in statement context: the operand is
        # materialised once into an sr temporary, not duplicated.
        from repro.ir.nodes import LoadExpr

        diff = BinOp("-", LoadExpr("a", (SymRef("i"),)),
                     LoadExpr("b", (SymRef("i"),)))
        p = prog_of([Assign("storage0", IRCall("pow", (diff, Const(2.0))))])
        out = strength_reduce(p, fastmath=False)
        stmts = out["F"].body.stmts
        assert len(stmts) == 2
        assert stmts[0].target.startswith("sr")
        assert repr(stmts[1].value).count("load") == 0

    def test_pow_dist4_node_count_pinned(self):
        # Regression: pow(dist, 4) through the full pipeline.  The square
        # is hoisted once (`sr1 = dist * dist; out = sr1 * sr1`) — the old
        # expansion duplicated the operand tree per factor.  Pinning the
        # node mass keeps the duplication from silently reappearing.
        from repro.ir.nodes import LoadExpr

        dist = Assign(
            "dist",
            IRCall("sqrt", (BinOp("-", LoadExpr("a", (SymRef("i"),)),
                                  LoadExpr("b", (SymRef("i"),))),)),
        )
        p = IRProgram({"F": IRFunction("F", ("a", "b", "i"), Block([
            dist,
            Assign("storage0", IRCall("pow", (SymRef("dist"), Const(4.0)))),
        ]))})
        pm = PassManager(fastmath=False, verify=True)
        out = pm.run(p)
        nodes = sum(1 for s in out["F"].body.walk()
                    for ex in s.exprs() for _ in ex.walk())
        assert nodes == 12
        assert repr(out["F"].body.stmts[-1].value).count("load") == 0

    def test_pow0_is_one(self):
        assert reduce_expr(IRCall("pow", (SymRef("x"), Const(0.0)))) == Const(1.0)

    def test_fractional_exponent_kept(self):
        out = reduce_expr(IRCall("pow", (SymRef("x"), Const(2.5))))
        assert isinstance(out, IRCall)

    def test_sqrt_becomes_safe_finvsqrt_form(self):
        out = reduce_expr(IRCall("sqrt", (SymRef("x"),)))
        # 1/(1/sqrt x) — the form that returns 0 at x=0 (paper IV-E).
        assert repr(out) == "(1 / fast_inverse_sqrt(x))"

    def test_reciprocal_sqrt_direct(self):
        e = BinOp("/", Const(1.0), IRCall("sqrt", (SymRef("x"),)))
        out = reduce_expr(e)
        assert repr(out) == "fast_inverse_sqrt(x)"

    def test_fastmath_off_keeps_sqrt(self):
        out = reduce_expr(IRCall("sqrt", (SymRef("x"),)), fastmath=False)
        assert isinstance(out, IRCall) and out.func == "sqrt"

    def test_pow_reduction_exact_even_without_fastmath(self):
        out = reduce_expr(IRCall("pow", (SymRef("x"), Const(2.0))),
                          fastmath=False)
        assert repr(out) == "(x * x)"

    def test_program_pass_sets_meta(self):
        p = prog_of([Assign("x", IRCall("sqrt", (Const(4.0),)))])
        out = strength_reduce(p, fastmath=True)
        assert out.meta["strength_reduced"] and out.meta["fastmath"]

    def test_value_preserved_approximately(self):
        e = IRCall("sqrt", (Const(2.0),))
        exact = e.evaluate({})
        fast = reduce_expr(e).evaluate({})
        assert fast == pytest.approx(exact, rel=1e-4)

    def test_zero_gives_zero_not_nan(self):
        out = reduce_expr(IRCall("sqrt", (Const(0.0),)))
        v = out.evaluate({})
        assert v == 0.0 and not np.isnan(v)


class TestStandardPasses:
    def test_constant_fold_arithmetic(self):
        p = prog_of([Assign("x", BinOp("+", Const(2.0), Const(3.0)))])
        out = constant_fold(p)
        assert out["F"].body.stmts[0].value == Const(5.0)

    def test_identity_mul_one(self):
        p = prog_of([Assign("x", BinOp("*", SymRef("y"), Const(1.0)))])
        assert constant_fold(p)["F"].body.stmts[0].value == SymRef("y")

    def test_identity_add_zero(self):
        p = prog_of([Assign("x", BinOp("+", Const(0.0), SymRef("y")))])
        assert constant_fold(p)["F"].body.stmts[0].value == SymRef("y")

    def test_fold_call(self):
        p = prog_of([Assign("x", IRCall("sqrt", (Const(16.0),)))])
        assert constant_fold(p)["F"].body.stmts[0].value == Const(4.0)

    def test_dce_drops_unused_assign(self):
        p = prog_of([
            Assign("unused", Const(1.0)),
            Assign("storage0", Const(2.0)),
        ])
        out = dead_code_eliminate(p)
        targets = [s.target for s in out["F"].body.stmts]
        assert targets == ["storage0"]

    def test_dce_keeps_used(self):
        p = prog_of([
            Assign("a", Const(1.0)),
            Assign("storage0", SymRef("a")),
        ])
        out = dead_code_eliminate(p)
        assert len(out["F"].body.stmts) == 2

    def test_dce_keeps_array_allocs(self):
        p = prog_of([Alloc("buf", size=Const(8.0))])
        out = dead_code_eliminate(p)
        assert len(out["F"].body.stmts) == 1


class TestPassManager:
    def test_all_stages_recorded(self):
        pm = PassManager()
        p = prog_of([Assign("storage0", IRCall("sqrt",
                                               (IRCall("pow", (SymRef("x"),
                                                               Const(2.0))),)))])
        pm.run(p)
        from repro.ir.passes import PIPELINE_STAGES

        assert set(PIPELINE_STAGES) <= set(pm.snapshots)

    def test_unknown_stage_rejected(self):
        pm = PassManager()
        pm.run(prog_of([Assign("storage0", Const(1.0))]))
        with pytest.raises(KeyError):
            pm.stage("nope")

    def test_stages_are_distinct_objects(self):
        pm = PassManager()
        pm.run(prog_of([Assign("storage0",
                               IRCall("sqrt", (SymRef("x"),)))]))
        assert pm.stage("lowered") is not pm.stage("final")
