"""Tests for the IR pretty-printer (Fig 2/3 regeneration)."""

import numpy as np
import pytest

from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.ir.printer import render_function, render_program, render_stages


@pytest.fixture
def nn_program(rng):
    e = PortalExpr("nn")
    e.addLayer(PortalOp.FORALL, Storage(rng.normal(size=(20, 3)), name="query"))
    e.addLayer(PortalOp.ARGMIN, Storage(rng.normal(size=(25, 3)),
                                        name="reference"),
               PortalFunc.EUCLIDEAN)
    return e.compile()


@pytest.fixture
def rng():
    return np.random.default_rng(10)


class TestRenderFunction:
    def test_header_and_loops(self, nn_program):
        text = render_function(nn_program.pass_manager.stage("lowered")["BaseCase"])
        assert text.startswith("BaseCase(query, reference):")
        assert "for" in text and "..." in text

    def test_storage_injection_comments(self, nn_program):
        text = render_function(nn_program.pass_manager.stage("lowered")["BaseCase"])
        assert "/* Storage injection for outer layer */" in text
        assert "alloc storage0[query.size]" in text

    def test_strength_reduction_visible(self, nn_program):
        low = render_function(nn_program.pass_manager.stage("lowered")["BaseCase"])
        final = render_function(nn_program.pass_manager.stage("final")["BaseCase"])
        assert "pow(" in low
        assert "pow(" not in final          # chained multiply now
        assert "fast_inverse_sqrt" in final

    def test_flattening_visible(self, nn_program):
        low = render_function(nn_program.pass_manager.stage("lowered")["BaseCase"])
        flat = render_function(
            nn_program.pass_manager.stage("flattened")["BaseCase"])
        import re

        assert re.search(r"load\(query_data,\w+,d\)", low.replace(" ", ""))
        assert "stride" in flat

    def test_prune_renders_return(self, nn_program):
        text = render_function(nn_program.pass_manager.stage("final")["PruneApprox"])
        assert "return" in text and "node_bound" in text

    def test_compute_approx_zero_for_pruning(self, nn_program):
        text = render_function(
            nn_program.pass_manager.stage("final")["ComputeApprox"])
        assert "pruning problem" in text
        assert "return 0" in text


class TestRenderProgram:
    def test_three_functions(self, nn_program):
        text = render_program(nn_program.pass_manager.stage("final"))
        assert "BaseCase(" in text
        assert "PruneApprox(" in text
        assert "ComputeApprox(" in text

    def test_stage_dump_contains_all_stages(self, nn_program):
        text = render_stages(nn_program.pass_manager.snapshots)
        for stage in ("lowered", "flattened", "numopt", "strength", "final"):
            assert f"=== stage: {stage}" in text
