"""Tests for the storage-injection plan (paper section IV-B rules)."""

import numpy as np
import pytest

from repro.dsl import PortalFunc, PortalOp, Storage
from repro.dsl.layer import Layer
from repro.ir.storage_injection import injection_plan


@pytest.fixture
def store():
    return Storage(np.random.default_rng(0).normal(size=(50, 3)), name="pts")


def plan_for(store, *specs):
    layers = [Layer.build(op, args, {}) for op, args in specs]
    return injection_plan(layers)


class TestInjectionRules:
    def test_forall_injects_dataset_size(self, store):
        rows = plan_for(store, (PortalOp.FORALL, (store,)))
        assert rows[0].units == 50

    def test_single_injects_one(self, store):
        rows = plan_for(store, (PortalOp.ARGMIN, (store, PortalFunc.EUCLIDEAN)))
        assert rows[0].units == 1
        assert rows[0].with_index

    def test_multi_injects_k(self, store):
        rows = plan_for(store, ((PortalOp.KARGMIN, 7),
                                (store, PortalFunc.EUCLIDEAN)))
        assert rows[0].units == 7

    def test_union_unbounded(self, store):
        rows = plan_for(store, (PortalOp.UNIONARG, (store,)))
        assert rows[0].units == -1

    def test_nn_plan_shape(self, store):
        rows = plan_for(
            store,
            (PortalOp.FORALL, (store,)),
            (PortalOp.ARGMIN, (store, PortalFunc.EUCLIDEAN)),
        )
        assert [r.units for r in rows] == [50, 1]
        assert rows[1].description.startswith("ARGMIN injects 1 unit")
