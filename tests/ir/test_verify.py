"""Tests for the structural IR verifier and its pass-manager wiring,
including the "deliberately broken pass" drill: a mutated pass must be
caught immediately and attributed by name."""

import numpy as np
import pytest

from repro.dsl.expr import BinOp, Const, DimReduce, Var
from repro.ir import passes as passes_mod
from repro.ir.nodes import (
    Alloc, Assign, AugAssign, Block, CallStmt, For, IfStmt, IRCall,
    IRFunction, IRProgram, LoadExpr, ReturnStmt, StoreStmt, SymRef,
)
from repro.ir.passes import PassManager
from repro.ir.verify import (
    IRVerificationError, verify_function, verify_program,
)


def fn_of(stmts, params=(), name="F"):
    return IRFunction(name, tuple(params), Block(list(stmts)))


def prog_of(stmts, params=(), **meta):
    p = IRProgram({"F": fn_of(stmts, params)})
    p.meta.update(meta)
    return p


class TestExpressionChecks:
    def test_clean_function_passes(self):
        verify_function(fn_of([
            Alloc("t", init=Const(0.0)),
            Assign("x", BinOp("+", SymRef("t"), Const(1.0))),
            ReturnStmt(SymRef("x")),
        ]))

    def test_frontend_node_rejected(self):
        with pytest.raises(IRVerificationError, match="frontend node Var"):
            verify_function(fn_of([Assign("x", Var("q"))]))

    def test_frontend_dimreduce_rejected(self):
        e = DimReduce("+", Var("q") - Var("r"))
        with pytest.raises(IRVerificationError,
                           match="frontend node DimReduce"):
            verify_function(fn_of([Assign("x", e)]))

    def test_dangling_symref_rejected(self):
        with pytest.raises(IRVerificationError, match="dangling reference"):
            verify_function(fn_of([Assign("x", SymRef("ghost"))]))

    def test_param_reference_allowed(self):
        verify_function(fn_of([Assign("x", SymRef("p"))], params=("p",)))

    def test_external_names_allowed(self):
        verify_function(fn_of([
            Assign("x", LoadExpr("query_data", (SymRef("dim"),))),
        ]))

    def test_unknown_func_rejected(self):
        with pytest.raises(IRVerificationError, match="unknown IR function"):
            verify_function(fn_of([Assign("x", IRCall("mystery", ()))]))

    def test_wrong_arity_rejected(self):
        with pytest.raises(IRVerificationError, match="expects 1 argument"):
            verify_function(fn_of([
                Assign("x", IRCall("sqrt", (Const(1.0), Const(2.0)))),
            ]))

    def test_illegal_binop_rejected(self):
        with pytest.raises(IRVerificationError, match="illegal binary"):
            verify_function(fn_of([
                Assign("x", BinOp("%", Const(1.0), Const(2.0))),
            ]))

    def test_indexless_load_rejected(self):
        with pytest.raises(IRVerificationError, match="no index"):
            verify_function(fn_of([Assign("x", LoadExpr("a_data", ()))]))

    def test_multi_index_load_rejected_after_flattening(self):
        load = LoadExpr("a_data", (Const(0.0), Const(1.0)))
        verify_function(fn_of([Assign("x", load)]), flattened=False)
        with pytest.raises(IRVerificationError, match="after flattening"):
            verify_function(fn_of([Assign("x", load)]), flattened=True)


class TestStatementChecks:
    def test_duplicate_alloc_rejected(self):
        with pytest.raises(IRVerificationError, match="duplicate allocation"):
            verify_function(fn_of([
                Alloc("t", init=Const(0.0)),
                Alloc("t", init=Const(0.0)),
            ]))

    def test_augassign_undefined_target_rejected(self):
        with pytest.raises(IRVerificationError, match="undefined target"):
            verify_function(fn_of([AugAssign("acc", "+", Const(1.0))]))

    def test_augassign_bad_op_rejected(self):
        with pytest.raises(IRVerificationError, match="accumulator operator"):
            verify_function(fn_of([
                Alloc("acc", init=Const(0.0)),
                AugAssign("acc", "-", Const(1.0)),
            ]))

    def test_indexed_augassign_must_target_storage(self):
        with pytest.raises(IRVerificationError, match="injected storage"):
            verify_function(fn_of([
                Alloc("buf", size=Const(4.0)),
                AugAssign("buf", "+", Const(1.0), index=Const(0.0)),
            ]))

    def test_loop_var_defined_in_body(self):
        verify_function(fn_of([
            Alloc("acc", init=Const(0.0)),
            For("i", Const(0.0), SymRef("dim"), Block([
                AugAssign("acc", "+", SymRef("i")),
            ])),
        ]))

    def test_sr_temp_single_assignment(self):
        with pytest.raises(IRVerificationError, match="single definition"):
            verify_function(fn_of([
                Assign("sr1", Const(1.0)),
                Assign("sr1", Const(2.0)),
            ]))

    def test_cse_temp_never_accumulated(self):
        with pytest.raises(IRVerificationError, match="as an accumulator"):
            verify_function(fn_of([
                Assign("cse1", Const(1.0)),
                AugAssign("cse1", "+", Const(1.0)),
            ]))

    def test_callstmt_arity_checked(self):
        with pytest.raises(IRVerificationError, match="expects 2"):
            verify_function(fn_of([
                CallStmt("append", (SymRef("storage0"),)),
            ]))

    def test_store_into_undefined_array_rejected(self):
        with pytest.raises(IRVerificationError, match="undefined array"):
            verify_function(fn_of([
                StoreStmt("out", (Const(0.0),), Const(1.0)),
            ]))

    def test_branch_definitions_propagate(self):
        # Lenient union semantics: lowering initialises accumulators
        # before the branches that read them.
        verify_function(fn_of([
            Alloc("kval", init=Const(0.0)),
            IfStmt(Const(1.0), Block([Assign("x", Const(2.0))])),
            Assign("y", SymRef("x")),
        ]))


class TestVerifyProgram:
    def test_error_carries_location(self):
        with pytest.raises(IRVerificationError) as exc:
            verify_program(prog_of([Assign("x", SymRef("ghost"))]),
                           pass_name="cse")
        err = exc.value
        assert err.pass_name == "cse"
        assert err.function == "F"
        assert "ghost" in err.message
        assert "x = ghost" in err.stmt
        assert "after pass 'cse'" in str(err)

    def test_non_program_rejected(self):
        with pytest.raises(IRVerificationError, match="non-empty IRProgram"):
            verify_program(IRProgram({}), pass_name="dce")

    def test_flattened_meta_tightens_load_check(self):
        load = LoadExpr("a_data", (Const(0.0), Const(1.0)))
        verify_program(prog_of([Assign("x", load)]))
        with pytest.raises(IRVerificationError, match="after flattening"):
            verify_program(prog_of([Assign("x", load)], flattened=True))


def _kde_expr():
    from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage

    rng = np.random.default_rng(7)
    e = PortalExpr("kde")
    e.addLayer(PortalOp.FORALL, Storage(rng.normal(size=(25, 3)),
                                        name="query"))
    e.addLayer(PortalOp.SUM, Storage(rng.normal(size=(30, 3)),
                                     name="reference"),
               PortalFunc.GAUSSIAN, bandwidth=1.0)
    e.validate()
    return e


class TestBrokenPassDrill:
    """Inject a deliberately broken pass and check the verifier catches
    it immediately and attributes it to the right pass name."""

    def test_broken_cse_attributed(self, monkeypatch):
        real_cse = passes_mod.common_subexpression_eliminate

        def broken_cse(program):
            # Reference every cse temp but "forget" its definition — the
            # classic dropped-assignment footprint.
            good = real_cse(program)

            def drop_cse_defs(s):
                if isinstance(s, Assign) and s.target.startswith("cse"):
                    return None
                return s

            return IRProgram(
                {n: f.map_stmts(drop_cse_defs)
                 for n, f in good.functions.items()},
                dict(good.meta),
            )

        monkeypatch.setattr(passes_mod, "common_subexpression_eliminate",
                            broken_cse)
        pm = PassManager(fastmath=True, verify=True)
        lowered = _lowered_kde()
        with pytest.raises(IRVerificationError) as exc:
            pm.run(lowered)
        assert exc.value.pass_name == "cse"
        assert "dangling reference" in exc.value.message

    def test_broken_strength_attributed(self, monkeypatch):
        real_strength = passes_mod.strength_reduce

        def broken_strength(program, fastmath=True):
            bad = real_strength(program, fastmath=fastmath)
            # Rebuild every exp with a bogus extra argument.

            def fatten(e):
                if isinstance(e, IRCall) and e.func == "exp":
                    return IRCall("exp", e.args + (Const(0.0),))
                return e

            return bad.map_exprs(fatten)

        monkeypatch.setattr(passes_mod, "strength_reduce", broken_strength)
        pm = PassManager(fastmath=False, verify=True)
        with pytest.raises(IRVerificationError) as exc:
            pm.run(_lowered_kde())
        assert exc.value.pass_name == "strength"
        assert "exp expects 1" in exc.value.message

    def test_broken_dce_attributed(self, monkeypatch):
        def broken_dce(program):
            # Drop *live* code: every Alloc, leaving dangling accumulators.
            def drop_allocs(s):
                if isinstance(s, Alloc):
                    return None
                return s

            return IRProgram(
                {n: f.map_stmts(drop_allocs)
                 for n, f in program.functions.items()},
                dict(program.meta),
            )

        monkeypatch.setattr(passes_mod, "dead_code_eliminate", broken_dce)
        pm = PassManager(fastmath=True, verify=True)
        with pytest.raises(IRVerificationError) as exc:
            pm.run(_lowered_kde())
        assert exc.value.pass_name == "dce"

    def test_intact_pipeline_verifies_clean(self):
        pm = PassManager(fastmath=True, verify=True)
        pm.run(_lowered_kde())
        assert pm.timings.get("verify", 0.0) > 0.0

    def test_verify_ir_option_end_to_end(self, monkeypatch):
        # Through the public execute() surface: REPRO_VERIFY_IR + a broken
        # pass must abort compilation with the attributed error.
        def broken_fold(program):
            return program.map_exprs(
                lambda e: BinOp("%", e, e) if isinstance(e, Const) else e
            )

        monkeypatch.setattr(passes_mod, "constant_fold", broken_fold)
        with pytest.raises(IRVerificationError) as exc:
            _kde_expr().execute(verify_ir=True, cache=False)
        assert exc.value.pass_name == "fold"
        assert "illegal binary operator" in exc.value.message


def _lowered_kde():
    from repro.ir.lowering import lower
    from repro.rules import build_rules

    e = _kde_expr()
    cls, rule = build_rules(e.layers, e.layers[1].metric_kernel)
    return lower(e.layers, e.layers[1].metric_kernel, cls, rule, "kde")
