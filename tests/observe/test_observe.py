"""Unit tests for the :mod:`repro.observe` tracer and counters registry."""

import json
import threading

import numpy as np
import pytest

from repro.observe import (
    Counters, active_counters, collect, contribute, disable_tracing,
    enable_tracing, event, get_tracer, span, tracing,
)


class TestCounters:
    def test_inc_update_get(self):
        c = Counters()
        c.inc("a")
        c.inc("a", 2)
        c.update({"b": 5})
        assert c.get("a") == 3
        assert c.get("b") == 5
        assert c.get("missing") == 0
        assert len(c) == 2

    def test_merge_and_clear(self):
        a, b = Counters(), Counters()
        a.inc("x", 1)
        b.inc("x", 2)
        b.inc("y", 7)
        a.merge(b)
        assert a.as_dict() == {"x": 3, "y": 7}
        a.clear()
        assert len(a) == 0

    def test_rate(self):
        c = Counters()
        c.update({"hits": 3, "total": 12})
        assert c.rate("hits", "total") == pytest.approx(0.25)
        assert c.rate("hits", "absent") == 0.0

    def test_thread_safety(self):
        c = Counters()

        def bump():
            for _ in range(5000):
                c.inc("n")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.get("n") == 20000


class TestCollect:
    def test_disabled_by_default(self):
        assert active_counters() is None
        contribute({"ignored": 1})  # must be a silent no-op

    def test_collect_captures(self):
        with collect() as c:
            assert active_counters() is c
            contribute({"k": 2})
            contribute({"k": 3})
        assert c.get("k") == 5
        assert active_counters() is None

    def test_nested_collect_shadows(self):
        with collect() as outer:
            contribute({"k": 1})
            with collect() as inner:
                contribute({"k": 10})
            contribute({"k": 1})
        assert outer.get("k") == 2
        assert inner.get("k") == 10

    def test_out_of_order_exit_across_threads(self):
        """Regression: concurrent collect blocks may exit in any order
        (the serving layer executes on a worker pool).  A block exiting
        *before* a later-opened block must not restore its own saved
        predecessor — that would deactivate (or resurrect) the wrong
        registry for the still-open block."""
        entered_a = threading.Event()
        entered_b = threading.Event()
        exited_a = threading.Event()
        regs = {}

        def thread_a():
            with collect() as a:
                regs["a"] = a
                entered_a.set()
                assert entered_b.wait(5)
            exited_a.set()

        def thread_b():
            assert entered_a.wait(5)
            with collect() as b:
                regs["b"] = b
                entered_b.set()
                assert exited_a.wait(5)
                # A entered first and exited first; B must still be the
                # active registry, not A's saved predecessor (None).
                assert active_counters() is b
                contribute({"late": 1})

        ta = threading.Thread(target=thread_a)
        tb = threading.Thread(target=thread_b)
        ta.start()
        tb.start()
        ta.join(10)
        tb.join(10)
        assert active_counters() is None
        assert regs["b"].get("late") == 1

    def test_same_registry_reentrant_across_threads(self):
        """The serving layer installs one shared registry from many
        worker threads at once; every exit order must leave it counting
        until the last block closes, then deactivate it."""
        shared = Counters()
        barrier = threading.Barrier(4, timeout=10)

        def worker():
            with collect(shared):
                barrier.wait()  # all four blocks open simultaneously
                contribute({"n": 1})
                barrier.wait()  # hold until everyone contributed

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert shared.get("n") == 4
        assert active_counters() is None


class TestTracer:
    def test_disabled_span_is_null(self):
        assert get_tracer() is None
        with span("anything", x=1) as sp:
            sp.note(y=2)  # no-op singleton accepts notes
        event("nothing")  # no sink, no error

    def test_spans_and_events_emit_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracing(str(path)):
            with span("outer", stage="test") as sp:
                sp.note(extra=42)
            event("marker", value=7)
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(records) == 2
        outer = next(r for r in records if r["name"] == "outer")
        assert outer["event"] == "span"
        assert outer["attrs"] == {"stage": "test", "extra": 42}
        assert outer["dur_ms"] >= 0.0
        assert "ts_ms" in outer and "thread" in outer
        marker = next(r for r in records if r["name"] == "marker")
        assert marker["event"] == "event"
        assert marker["attrs"] == {"value": 7}
        assert get_tracer() is None  # context manager restored

    def test_span_records_errors(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracing(str(path)):
            with pytest.raises(RuntimeError):
                with span("failing"):
                    raise RuntimeError("kaboom")
        [record] = [json.loads(l) for l in path.read_text().splitlines()]
        assert record["name"] == "failing"
        assert "kaboom" in record["error"]

    def test_enable_disable(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = enable_tracing(str(path))
        try:
            assert get_tracer() is tracer
            with span("one"):
                pass
        finally:
            disable_tracing()
        assert get_tracer() is None
        assert tracer.records_emitted == 1


class TestPipelineIntegration:
    def test_compile_emits_pipeline_spans(self, tmp_path):
        from repro.problems import knn

        rng = np.random.default_rng(5)
        Q = rng.normal(size=(80, 3))
        path = tmp_path / "trace.jsonl"
        with tracing(str(path)), collect() as counters:
            knn(Q, k=2)
        names = {json.loads(l)["name"]
                 for l in path.read_text().splitlines()}
        assert {"compile.rules", "compile.lowering", "compile.passes",
                "compile.tree_build", "codegen", "run"} <= names
        assert any(n.startswith("ir.pass.") for n in names)
        assert counters.get("compile.count") == 1
        assert counters.get("traversal.visited") > 0
        assert any(k.startswith("passes.") for k in counters.as_dict())

    def test_parse_emits_span(self, tmp_path):
        from repro.dsl import parse_program

        path = tmp_path / "trace.jsonl"
        with tracing(str(path)):
            parse_program(
                'Storage a("a.csv");\nPortalExpr e;\n',
                bindings={"a.csv": np.zeros((4, 2))})
        names = [json.loads(l)["name"]
                 for l in path.read_text().splitlines()]
        assert names == ["parse"]

    def test_stats_api_shape(self):
        from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage

        rng = np.random.default_rng(6)
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, Storage(rng.normal(size=(60, 3))))
        e.addLayer(PortalOp.ARGMIN, Storage(rng.normal(size=(70, 3))),
                   PortalFunc.EUCLIDEAN)
        e.execute()
        s = e.stats()
        assert s["mode"] == "tree"
        assert {"visited", "pruned", "prune_rate", "approx_rate"} <= set(
            s["traversal"])
        assert set(s["pass_timings_ms"]) >= {"flatten", "fold", "cse", "dce"}
        assert s["run_ms"] >= 0.0
        json.dumps(s)  # the summary must be JSON-serialisable
