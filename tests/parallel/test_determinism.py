"""Parallel determinism: worker count must never change an answer.

The scheduler partitions work by query subtree, every task owns a
disjoint query range, and ``min_tasks`` pins the task decomposition
independently of the worker count — so running the same problem with 1
worker or N workers must produce *bit-identical* outputs (not merely
allclose: identical task-local summation order) and identical aggregate
traversal counters.
"""

import numpy as np
import pytest

from repro.backend.cache import clear_caches
from repro.observe import collect
from repro.problems import kde, two_point_correlation

pytestmark = pytest.mark.slow

MIN_TASKS = 16
WORKER_COUNTS = [2, 4]


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(4242)
    X = rng.uniform(0, 8, size=(700, 3))
    return np.ascontiguousarray(X[:300]), np.ascontiguousarray(X[300:])


def _counts_only(counters):
    """Integer event counts; per-run timings are legitimately noisy and
    ``shm.publish.*`` is executor plumbing (a workers=1 run never
    publishes shared memory, so it varies with worker count by design —
    the determinism claim is about the traversal)."""
    return {k: v for k, v in counters.as_dict().items()
            if not k.endswith("_s") and not k.endswith("_ms")
            and not k.startswith("shm.")}


class TestKDEDeterminism:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bit_identical_across_workers(self, data, workers):
        Q, R = data
        base = kde(Q, R, bandwidth=0.7, parallel=True, workers=1,
                   min_tasks=MIN_TASKS)
        par = kde(Q, R, bandwidth=0.7, parallel=True, workers=workers,
                  min_tasks=MIN_TASKS)
        assert np.array_equal(base, par)  # bitwise, not allclose

    def test_aggregate_counters_identical(self, data):
        Q, R = data
        runs = []
        for workers in (1, 4):
            clear_caches()  # both runs must be full compiles to compare
            with collect() as counters:
                kde(Q, R, bandwidth=0.7, parallel=True, workers=workers,
                    min_tasks=MIN_TASKS)
            runs.append(_counts_only(counters))
        assert runs[0] == runs[1]
        assert runs[0]["traversal.visited"] > 0


class TestTwoPointDeterminism:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_exact_count_across_workers(self, data, workers):
        Q, _ = data
        base = two_point_correlation(Q, 1.0, parallel=True, workers=1,
                                     min_tasks=MIN_TASKS)
        par = two_point_correlation(Q, 1.0, parallel=True, workers=workers,
                                    min_tasks=MIN_TASKS)
        assert base == par

    def test_aggregate_counters_identical(self, data):
        Q, _ = data
        runs = []
        for workers in (1, 4):
            clear_caches()  # both runs must be full compiles to compare
            with collect() as counters:
                two_point_correlation(Q, 1.0, parallel=True, workers=workers,
                                      min_tasks=MIN_TASKS)
            runs.append(_counts_only(counters))
        assert runs[0] == runs[1]


class TestSerialParallelAgreement:
    def test_kde_parallel_matches_serial(self, data):
        """Parallel and serial traverse in different orders, so demand
        allclose here (the bitwise guarantee is across worker counts)."""
        Q, R = data
        serial = kde(Q, R, bandwidth=0.7)
        par = kde(Q, R, bandwidth=0.7, parallel=True, workers=4)
        np.testing.assert_allclose(serial, par, rtol=1e-10)

    def test_two_point_parallel_matches_serial(self, data):
        Q, _ = data
        assert two_point_correlation(Q, 1.0) == two_point_correlation(
            Q, 1.0, parallel=True, workers=4)
