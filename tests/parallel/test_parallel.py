"""Tests for the parallel executor and the task→data scheduler."""

import numpy as np
import pytest

from repro.parallel import (
    default_workers, expand_frontier, parallel_dual_tree, run_tasks,
)
from repro.trees import build_kdtree


@pytest.fixture
def rng():
    return np.random.default_rng(14)


class TestExecutor:
    def test_results_in_order(self):
        tasks = [lambda i=i: i * i for i in range(10)]
        assert run_tasks(tasks, workers=4) == [i * i for i in range(10)]

    def test_serial_fallback(self):
        tasks = [lambda: 1, lambda: 2]
        assert run_tasks(tasks, workers=1) == [1, 2]

    def test_exception_propagates(self):
        def boom():
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            run_tasks([boom, lambda: 1], workers=2)

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_failure_cancels_queued_tasks(self):
        """Regression: a failing task must cancel queued tasks instead of
        letting the pool drain them all before the exception surfaces."""
        import threading

        started = []
        # Never set: ok-tasks that *do* start park here so the cancel
        # sweep (microseconds) always lands before a worker can drain
        # the queue.  The timeout only bounds how long a parked task
        # lingers — correctness does not depend on it.
        parked = threading.Event()

        def boom():
            raise ValueError("boom")

        def make(i):
            def task():
                started.append(i)
                parked.wait(0.25)
                return i
            return task

        with pytest.raises(ValueError, match="boom"):
            run_tasks([boom] + [make(i) for i in range(32)], workers=2)
        assert len(started) < 32

    def test_earliest_failure_wins(self):
        """Both tasks fail, in submission order (enforced by an event,
        not a sleep): the earliest-submitted failure is the one raised."""
        import threading

        first_raised = threading.Event()

        def first():
            first_raised.set()
            raise ValueError("first")

        def second():
            assert first_raised.wait(5.0)
            raise ValueError("second")

        with pytest.raises(ValueError, match="first"):
            run_tasks([first, second], workers=2)

    def test_earliest_submitted_failure_wins_over_first_done(self):
        """Regression: when a later-submitted task fails *first* in
        wall-clock, the raised exception must still be the earliest
        submitted one — matching what serial execution would raise."""
        import threading

        second_failed = threading.Event()
        # Never set: keeps task 1 running while the executor observes
        # task 2's failure and sweeps the queue.  The timeout only
        # bounds lingering; the submission-order scan in the executor
        # raises task 1's error regardless of which finishes first.
        parked = threading.Event()

        def slow_first():
            assert second_failed.wait(5.0)
            parked.wait(0.25)
            raise ValueError("submitted-first")

        def fast_second():
            second_failed.set()
            raise RuntimeError("finished-first")

        with pytest.raises(ValueError, match="submitted-first"):
            run_tasks([slow_first, fast_second], workers=2)

    def test_midqueue_failure_cancels_unstarted_tail(self):
        """Regression: a failure in the middle of the queue cancels the
        later tasks that have not started, and the earliest-submitted
        failure is the one raised."""
        import threading

        started = []
        parked = threading.Event()  # never set; bounds lingering only

        def ok(i):
            def task():
                started.append(i)
                parked.wait(0.25)
                return i
            return task

        def boom(msg):
            def task():
                raise ValueError(msg)
            return task

        tasks = ([ok(0), boom("early"), boom("late")]
                 + [ok(i) for i in range(3, 40)])
        with pytest.raises(ValueError, match="early"):
            run_tasks(tasks, workers=2)
        assert len(started) < 37  # the tail never ran


class TestFrontier:
    def test_enough_nodes(self, rng):
        t = build_kdtree(rng.normal(size=(256, 2)), leaf_size=4)
        frontier = expand_frontier(t, 16)
        assert len(frontier) >= 16

    def test_frontier_partitions_points(self, rng):
        t = build_kdtree(rng.normal(size=(256, 2)), leaf_size=4)
        frontier = expand_frontier(t, 8)
        slices = sorted(t.slice(n) for n in frontier)
        assert slices[0][0] == 0 and slices[-1][1] == 256
        for (a, b), (c, d) in zip(slices, slices[1:]):
            assert b == c

    def test_all_leaves_stops(self, rng):
        t = build_kdtree(rng.normal(size=(16, 2)), leaf_size=8)
        frontier = expand_frontier(t, 1000)
        assert len(frontier) == len(t.leaves())


class TestParallelTraversal:
    def test_matches_serial(self, rng):
        from repro.traversal import dual_tree_traversal

        X = rng.normal(size=(300, 3))
        t = build_kdtree(X, leaf_size=16)
        acc_serial = np.zeros(300)
        acc_par = np.zeros(300)

        def make_base(acc):
            def base(qs, qe, rs, re):
                diff = t.points[qs:qe, None, :] - t.points[None, rs:re, :]
                acc[qs:qe] += np.exp(-(diff ** 2).sum(-1)).sum(axis=1)
            return base

        dual_tree_traversal(t, t, None, make_base(acc_serial))
        stats = parallel_dual_tree(t, t, None, make_base(acc_par), workers=4)
        assert np.allclose(acc_serial, acc_par)
        assert stats.base_case_pairs == 300 * 300

    def test_portal_parallel_option(self, rng):
        from repro.problems import knn

        X = rng.normal(size=(400, 3))
        d1, i1 = knn(X, k=3, fastmath=False)
        d2, i2 = knn(X, k=3, fastmath=False, parallel=True, workers=3)
        assert np.allclose(d1, d2)
