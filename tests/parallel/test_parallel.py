"""Tests for the parallel executor and the task→data scheduler."""

import numpy as np
import pytest

from repro.parallel import (
    default_workers, expand_frontier, parallel_dual_tree, run_tasks,
)
from repro.trees import build_kdtree


@pytest.fixture
def rng():
    return np.random.default_rng(14)


class TestExecutor:
    def test_results_in_order(self):
        tasks = [lambda i=i: i * i for i in range(10)]
        assert run_tasks(tasks, workers=4) == [i * i for i in range(10)]

    def test_serial_fallback(self):
        tasks = [lambda: 1, lambda: 2]
        assert run_tasks(tasks, workers=1) == [1, 2]

    def test_exception_propagates(self):
        def boom():
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            run_tasks([boom, lambda: 1], workers=2)

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_failure_cancels_queued_tasks(self):
        """Regression: a failing task must cancel queued tasks instead of
        letting the pool drain them all before the exception surfaces."""
        import time

        started = []

        def boom():
            time.sleep(0.05)
            raise ValueError("boom")

        def make(i):
            def task():
                started.append(i)
                time.sleep(0.05)
                return i
            return task

        with pytest.raises(ValueError, match="boom"):
            run_tasks([boom] + [make(i) for i in range(32)], workers=2)
        assert len(started) < 32

    def test_earliest_failure_wins(self):
        import time

        def fail(msg, delay=0.0):
            def task():
                time.sleep(delay)
                raise ValueError(msg)
            return task

        with pytest.raises(ValueError, match="first"):
            run_tasks([fail("first"), fail("second", delay=0.3)], workers=2)

    def test_earliest_submitted_failure_wins_over_first_done(self):
        """Regression: when a later-submitted task fails *first* in
        wall-clock, the raised exception must still be the earliest
        submitted one — matching what serial execution would raise."""
        import threading
        import time

        second_failed = threading.Event()

        def slow_first():
            second_failed.wait(timeout=5.0)
            time.sleep(0.05)  # make sure task 1's failure is observed first
            raise ValueError("submitted-first")

        def fast_second():
            second_failed.set()
            raise RuntimeError("finished-first")

        with pytest.raises(ValueError, match="submitted-first"):
            run_tasks([slow_first, fast_second], workers=2)

    def test_midqueue_failure_cancels_unstarted_tail(self):
        """Regression: a failure in the middle of the queue cancels the
        later tasks that have not started, and the earliest-submitted
        failure is the one raised."""
        import time

        started = []

        def ok(i):
            def task():
                started.append(i)
                time.sleep(0.02)
                return i
            return task

        def boom(msg):
            def task():
                time.sleep(0.05)
                raise ValueError(msg)
            return task

        tasks = ([ok(0), boom("early"), boom("late")]
                 + [ok(i) for i in range(3, 40)])
        with pytest.raises(ValueError, match="early"):
            run_tasks(tasks, workers=2)
        assert len(started) < 37  # the tail never ran


class TestFrontier:
    def test_enough_nodes(self, rng):
        t = build_kdtree(rng.normal(size=(256, 2)), leaf_size=4)
        frontier = expand_frontier(t, 16)
        assert len(frontier) >= 16

    def test_frontier_partitions_points(self, rng):
        t = build_kdtree(rng.normal(size=(256, 2)), leaf_size=4)
        frontier = expand_frontier(t, 8)
        slices = sorted(t.slice(n) for n in frontier)
        assert slices[0][0] == 0 and slices[-1][1] == 256
        for (a, b), (c, d) in zip(slices, slices[1:]):
            assert b == c

    def test_all_leaves_stops(self, rng):
        t = build_kdtree(rng.normal(size=(16, 2)), leaf_size=8)
        frontier = expand_frontier(t, 1000)
        assert len(frontier) == len(t.leaves())


class TestParallelTraversal:
    def test_matches_serial(self, rng):
        from repro.traversal import dual_tree_traversal

        X = rng.normal(size=(300, 3))
        t = build_kdtree(X, leaf_size=16)
        acc_serial = np.zeros(300)
        acc_par = np.zeros(300)

        def make_base(acc):
            def base(qs, qe, rs, re):
                diff = t.points[qs:qe, None, :] - t.points[None, rs:re, :]
                acc[qs:qe] += np.exp(-(diff ** 2).sum(-1)).sum(axis=1)
            return base

        dual_tree_traversal(t, t, None, make_base(acc_serial))
        stats = parallel_dual_tree(t, t, None, make_base(acc_par), workers=4)
        assert np.allclose(acc_serial, acc_par)
        assert stats.base_case_pairs == 300 * 300

    def test_portal_parallel_option(self, rng):
        from repro.problems import knn

        X = rng.normal(size=(400, 3))
        d1, i1 = knn(X, k=3, fastmath=False)
        d2, i2 = knn(X, k=3, fastmath=False, parallel=True, workers=3)
        assert np.allclose(d1, d2)
