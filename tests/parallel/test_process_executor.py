"""The process executor: thread-vs-process differential correctness,
shared-memory publication lifecycle, executor resolution, and the
affinity-respecting worker default.

The load-bearing guarantee: ``executor="process"`` is an *implementation
swap*, not an algorithm change — same frontier decomposition, same
per-task traversal, disjoint query-range merges — so outputs, merged
``TraversalStats`` and observability counters must be **bit-identical**
to ``executor="thread"`` on every problem, tree kind and engine.
"""

import os

import numpy as np
import pytest

from repro.backend.cache import clear_caches
from repro.backend.jit import CompileOptions, _resolve_executor
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.dsl.errors import SpecificationError
from repro.observe import collect
from repro.parallel import default_workers, run_process_tasks
from repro.parallel import shm
from repro.problems import (
    barnes_hut_potential, directed_hausdorff, kde, knn, knn_regress,
    pair_count, range_count, range_search, two_point_correlation,
)

#: Fixed decomposition so thread and process runs schedule identical
#: (query-subtree × reference-root) tasks.
PAR = {"parallel": True, "workers": 2, "min_tasks": 8}


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(2026)
    X = rng.uniform(0, 8, size=(500, 3))
    return np.ascontiguousarray(X[:220]), np.ascontiguousarray(X[220:])


def _assert_bit_identical(a, b):
    if isinstance(a, tuple):
        assert isinstance(b, tuple) and len(a) == len(b)
        for x, y in zip(a, b):
            _assert_bit_identical(x, y)
    elif isinstance(a, list):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)
    elif isinstance(a, np.ndarray):
        assert np.array_equal(a, b)  # bitwise, not allclose
    else:
        assert a == b


def _traversal_counts(counters):
    return {k: v for k, v in counters.as_dict().items()
            if k.startswith("traversal.")}


# The nine evaluated problems (paper Table III), each through both
# executors.  k-NN, Hausdorff and k-NN regression exercise the bound-rule
# (bounded-batched engine) path; the rest run the stateless batched
# frontier engine under `traversal="batched"`.
PROBLEMS = {
    "kde": lambda Q, R, o: kde(Q, R, bandwidth=0.7, **o),
    "knn": lambda Q, R, o: knn(Q, R, k=5, **o),
    "range_search": lambda Q, R, o: range_search(Q, R, h=1.5, **o),
    "range_count": lambda Q, R, o: range_count(Q, R, h=1.5, **o),
    "two_point": lambda Q, R, o: two_point_correlation(Q, 1.0, **o),
    "hausdorff": lambda Q, R, o: directed_hausdorff(Q, R, **o),
    "barnes_hut": lambda Q, R, o: barnes_hut_potential(
        Q, np.full(len(Q), 0.5), theta=0.4, **o),
    "pair_count": lambda Q, R, o: pair_count(Q, R, h=1.2, **o),
    "knn_regress": lambda Q, R, o: knn_regress(
        R, np.arange(len(R), dtype=float), Q, k=3, **o),
}


class TestDifferentialProblems:
    @pytest.mark.parametrize("name", sorted(PROBLEMS))
    def test_process_matches_thread_bitwise(self, data, name):
        Q, R = data
        fn = PROBLEMS[name]
        thread = fn(Q, R, dict(PAR, executor="thread"))
        process = fn(Q, R, dict(PAR, executor="process"))
        _assert_bit_identical(thread, process)

    @pytest.mark.parametrize("problem", ["knn", "kde"])
    def test_merged_stats_and_counters_identical(self, data, problem):
        """The merged TraversalStats (shipped to the counters registry)
        must match the thread executor's exactly — visited, pruned,
        base_case_pairs, everything."""
        Q, R = data
        fn = PROBLEMS[problem]
        runs = []
        for executor in ("thread", "process"):
            clear_caches()
            with collect() as counters:
                fn(Q, R, dict(PAR, executor=executor))
            runs.append(_traversal_counts(counters))
        assert runs[0] == runs[1]
        assert runs[0]["traversal.visited"] > 0
        assert runs[0]["traversal.base_case_pairs"] > 0

    def test_uncached_program_runs_process(self, data):
        """cache=False has no program token: the publication is
        ephemeral, released after the run, and still bit-identical."""
        Q, R = data
        thread = kde(Q, R, bandwidth=0.7, cache=False,
                     **dict(PAR, executor="thread"))
        before = shm.shared_block_stats()["blocks"]
        process = kde(Q, R, bandwidth=0.7, cache=False,
                      **dict(PAR, executor="process"))
        assert np.array_equal(thread, process)
        assert shm.shared_block_stats()["blocks"] == before  # released


class TestTreesAndEngines:
    @pytest.mark.parametrize("tree", ["kd", "ball", "octree"])
    def test_tree_kinds(self, data, tree):
        Q, R = data
        thread = kde(Q, R, bandwidth=0.7, tree=tree,
                     **dict(PAR, executor="thread"))
        process = kde(Q, R, bandwidth=0.7, tree=tree,
                      **dict(PAR, executor="process"))
        assert np.array_equal(thread, process)

    @pytest.mark.parametrize("traversal", ["stack", "batched"])
    def test_engines(self, data, traversal):
        Q, R = data
        thread = kde(Q, R, bandwidth=0.7, traversal=traversal,
                     **dict(PAR, executor="thread"))
        process = kde(Q, R, bandwidth=0.7, traversal=traversal,
                      **dict(PAR, executor="process"))
        assert np.array_equal(thread, process)

    def test_knn_bound_rule_routes_bounded_under_process(self, data):
        """k-NN requested batched routes to the bound-aware epoch engine;
        that routing must carry through the process executor, which ships
        each worker's ``qbound`` slice back for the parent-side merge."""
        Q, R = data
        expr = PortalExpr("knn-routing")
        expr.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
        expr.addLayer((PortalOp.KARGMIN, 5), Storage(R, name="reference"),
                      PortalFunc.EUCLIDEAN)
        out = expr.execute(traversal="batched", executor="process", **PAR)
        stats = expr.stats()
        assert stats["traversal_engine"] == "bounded-batched"
        assert stats["executor"] == "process"
        assert stats["bounded"]["epochs"] > 0
        thread = knn(Q, R, k=5, traversal="batched",
                     **dict(PAR, executor="thread"))
        assert np.array_equal(thread[0], np.asarray(out.values))


class TestExecutorResolution:
    def test_auto_picks_process_for_stack(self):
        assert _resolve_executor("auto", "stack") == "process"

    def test_auto_picks_thread_for_batched(self):
        assert _resolve_executor("auto", "batched") == "thread"

    def test_explicit_wins(self):
        assert _resolve_executor("thread", "stack") == "thread"
        assert _resolve_executor("process", "batched") == "process"

    def test_unknown_executor_rejected(self):
        with pytest.raises(SpecificationError, match="executor"):
            CompileOptions.from_dict({"executor": "greenlet"})

    def test_env_override_applies_when_not_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        assert CompileOptions.from_dict({}).executor == "process"

    def test_explicit_option_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        assert CompileOptions.from_dict(
            {"executor": "thread"}).executor == "thread"

    def test_invalid_env_override_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "quantum")
        with pytest.raises(SpecificationError, match="executor"):
            CompileOptions.from_dict({})

    def test_stats_report_executor(self, data):
        Q, R = data
        expr = PortalExpr("kde-executor-stats")
        expr.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
        expr.addLayer(PortalOp.SUM, Storage(R, name="reference"),
                      PortalFunc.GAUSSIAN, bandwidth=0.7)
        expr.execute(executor="thread", **PAR)
        assert expr.stats()["executor"] == "thread"


class TestDefaultWorkers:
    def test_respects_affinity(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: {0, 1, 2}, raising=False)
        assert default_workers() == 3

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        assert default_workers() == max(1, os.cpu_count() or 1)

    def test_never_below_one(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: set(), raising=False)
        assert default_workers() == 1


class TestSharedMemory:
    def test_publish_attach_roundtrip(self):
        arrays = {
            "a": np.arange(12.0).reshape(3, 4),
            "b": np.array([True, False, True]),
            "c": np.arange(5, dtype=np.int64),
        }
        name, manifest = shm.publish_arrays("t-roundtrip", arrays)
        try:
            handle, views = shm.attach_arrays(name, manifest)
            try:
                for key, arr in arrays.items():
                    assert np.array_equal(views[key], arr)
                    assert views[key].dtype == arr.dtype
                    assert not views[key].flags.writeable
            finally:
                views.clear()
                handle.close()
        finally:
            shm.release_block("t-roundtrip")

    def test_aliased_arrays_stored_once(self):
        big = np.zeros((1000, 8))
        name, manifest = shm.publish_arrays("t-alias",
                                            {"x": big, "y": big})
        try:
            assert manifest["x"] == manifest["y"]
            stats = shm.shared_block_stats()
            assert stats["bytes"] < 2 * big.nbytes
        finally:
            shm.release_block("t-alias")

    def test_republish_hits(self):
        arr = {"x": np.arange(4.0)}
        with collect() as counters:
            name1, _ = shm.publish_arrays("t-hit", arr)
            name2, _ = shm.publish_arrays("t-hit", arr)
        try:
            assert name1 == name2
            assert counters.get("shm.publish.miss") == 1
            assert counters.get("shm.publish.hit") == 1
        finally:
            shm.release_block("t-hit")

    def test_release_unlinks(self):
        name, manifest = shm.publish_arrays("t-release",
                                            {"x": np.arange(4.0)})
        shm.release_block("t-release")
        with pytest.raises(FileNotFoundError):
            shm.attach_arrays(name, manifest)

    def test_lru_bounds_block_count(self):
        try:
            for i in range(shm.MAX_BLOCKS + 3):
                shm.publish_arrays(f"t-lru-{i}", {"x": np.arange(4.0)})
            assert shm.shared_block_stats()["blocks"] <= shm.MAX_BLOCKS
        finally:
            shm.release_shared_blocks()

    def test_clear_caches_releases_blocks(self):
        shm.publish_arrays("t-clear", {"x": np.arange(4.0)})
        clear_caches()
        assert shm.shared_block_stats()["blocks"] == 0


def _square(x):
    return x * x


def _raise(msg):
    raise ValueError(msg)


class TestRunProcessTasks:
    def test_results_in_order(self):
        assert run_process_tasks(_square, list(range(8)),
                                 workers=2) == [i * i for i in range(8)]

    def test_serial_fallback(self):
        assert run_process_tasks(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_exception_propagates(self):
        with pytest.raises(ValueError, match="kaboom"):
            run_process_tasks(_raise, ["kaboom"] * 4, workers=2)
