"""The sharded reference layout: differential correctness against the
unsharded program, the cross-shard bound broadcast, shard planning and
resolution, env overrides, and shared-memory publication under the
multi-block sharded scheme.

The load-bearing guarantee: sharding is a *layout* change, not an
algorithm change — the reference set is spatially partitioned, one tree
is built per shard, and per-shard partial results are combined through
the inner operator's reduction algebra.  Decomposability (paper section
II-C) makes the combined output mathematically identical to the
unsharded one; the tests below pin down exactly how identical:

* reductions that pick values (min/max/k-smallest) select the *same
  floats* the unsharded run selects, so values compare bitwise;
* indicator counts are sums of small integers — bitwise too;
* arithmetic sums (KDE, Barnes-Hut) reassociate across shards, so they
  compare to tight tolerance instead;
* ties between equal values resolve to the lowest shard index, which
  may differ from unsharded traversal order — index comparisons are
  tie-aware (where indices differ, the corresponding values must be
  bitwise equal).
"""

import os
import threading

import numpy as np
import pytest

from repro.backend.cache import clear_caches
from repro.backend.jit import CompileOptions
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.dsl.errors import SpecificationError
from repro.observe import collect
from repro.parallel import plan_shards, resolve_shard_count, shm
from repro.parallel.executor import default_workers
from repro.parallel.shard import AUTO_SHARD_MIN_POINTS
from repro.problems import (
    barnes_hut_potential, directed_hausdorff, kde, knn, knn_regress,
    pair_count, range_count, range_search, two_point_correlation,
)

#: Process-pool options mirroring test_process_executor's PAR.
PAR = {"parallel": True, "workers": 2, "min_tasks": 8,
       "executor": "process"}


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(2026)
    X = rng.uniform(0, 8, size=(500, 3))
    return np.ascontiguousarray(X[:220]), np.ascontiguousarray(X[220:])


def _clustered(na: int, nb: int, nq: int, dist: float = 60.0, seed: int = 7):
    """Two well-separated reference clusters with every query near the
    first — the geometry where one shard's points are all dominated and
    the cross-shard broadcast has something to kill."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((na, 3))
    B = rng.standard_normal((nb, 3)) + dist
    R = np.ascontiguousarray(np.concatenate([A, B]))
    Q = np.ascontiguousarray(rng.standard_normal((nq, 3)) * 0.5)
    return Q, R


# The nine evaluated problems (paper Table III).  Each entry carries its
# comparison mode: how exact the sharded output must be, per the combine
# algebra (see module docstring).
#   exact      — bitwise equality on every output array/scalar
#   close      — arithmetic sum reassociates across shards (rtol 1e-12)
#   tie-aware  — k-NN style (values, indices): values bitwise, indices
#                equal except where the values tie
#   union      — per-query index sets compared as sorted arrays
#   (kde runs with tau=0 and Barnes-Hut with theta=0 here: their
#   approximation criteria act on tree-node geometry, and per-shard
#   trees legitimately make *different* approximation decisions — the
#   envelope tests below cover the approximate settings.)
PROBLEMS = {
    "kde": ("close",
            lambda Q, R, o: kde(Q, R, bandwidth=0.7, tau=0.0, **o)),
    "knn": ("tie-aware", lambda Q, R, o: knn(Q, R, k=5, **o)),
    "range_search": ("union",
                     lambda Q, R, o: range_search(Q, R, h=1.5, **o)),
    "range_count": ("exact",
                    lambda Q, R, o: range_count(Q, R, h=1.5, **o)),
    "two_point": ("exact",
                  lambda Q, R, o: two_point_correlation(Q, 1.0, **o)),
    "hausdorff": ("exact", lambda Q, R, o: directed_hausdorff(Q, R, **o)),
    "barnes_hut": ("close", lambda Q, R, o: barnes_hut_potential(
        Q, np.full(len(Q), 0.5), theta=1e-9, **o)),
    "pair_count": ("exact", lambda Q, R, o: pair_count(Q, R, h=1.2, **o)),
    "knn_regress": ("close", lambda Q, R, o: knn_regress(
        R, np.arange(len(R), dtype=float), Q, k=3, **o)),
}


def _assert_matches(mode, base, sharded):
    if mode == "tie-aware":
        vals_b, idx_b = base
        vals_s, idx_s = sharded
        assert np.array_equal(vals_b, vals_s)  # bitwise
        differs = idx_b != idx_s
        # Where the picked index differs, it must be a tie: the distance
        # at that slot is bitwise equal (already checked above), and both
        # indices are valid references.
        assert np.all(idx_s[differs] >= 0)
        assert np.all(idx_b[differs] >= 0)
    elif mode == "union":
        # range_search returns one sorted index array per query.
        assert len(base) == len(sharded)
        for b, s in zip(base, sharded):
            assert np.array_equal(np.asarray(b), np.asarray(s))
    elif mode == "close":
        np.testing.assert_allclose(np.asarray(base), np.asarray(sharded),
                                   rtol=1e-12, atol=0)
    else:  # exact
        if isinstance(base, tuple):
            for b, s in zip(base, sharded):
                assert np.array_equal(np.asarray(b), np.asarray(s))
        else:
            assert np.array_equal(np.asarray(base), np.asarray(sharded))


class TestDifferentialProblems:
    @pytest.mark.parametrize("name", sorted(PROBLEMS))
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_matches_unsharded(self, data, name, shards):
        Q, R = data
        mode, fn = PROBLEMS[name]
        base = fn(Q, R, {})
        sharded = fn(Q, R, {"shards": shards})
        _assert_matches(mode, base, sharded)

    @pytest.mark.parametrize("name", sorted(PROBLEMS))
    def test_sharded_matches_under_process_executor(self, data, name):
        Q, R = data
        mode, fn = PROBLEMS[name]
        base = fn(Q, R, {})
        sharded = fn(Q, R, dict(PAR, shards=2))
        _assert_matches(mode, base, sharded)

    @pytest.mark.parametrize("tree", ["kd", "ball", "octree"])
    def test_tree_kinds(self, data, tree):
        Q, R = data
        base = kde(Q, R, bandwidth=0.7, tau=0.0, tree=tree)
        sharded = kde(Q, R, bandwidth=0.7, tau=0.0, tree=tree, shards=2)
        np.testing.assert_allclose(base, sharded, rtol=1e-12, atol=0)

    @pytest.mark.parametrize("traversal", ["stack", "batched"])
    def test_engines(self, data, traversal):
        Q, R = data
        base = kde(Q, R, bandwidth=0.7, tau=0.0, traversal=traversal)
        sharded = kde(Q, R, bandwidth=0.7, tau=0.0, traversal=traversal,
                      shards=2)
        np.testing.assert_allclose(base, sharded, rtol=1e-12, atol=0)

    def test_shards_one_is_the_unsharded_program(self, data):
        """``shards=1`` resolves to the plain single-tree layout —
        bit-identical, no shard stats."""
        Q, R = data
        expr = PortalExpr("shard-one")
        expr.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
        expr.addLayer(PortalOp.SUM, Storage(R, name="reference"),
                      PortalFunc.GAUSSIAN, bandwidth=0.7)
        expr.execute(shards=1, tau=0.0)
        assert "shard" not in expr.stats()
        base = kde(Q, R, bandwidth=0.7, tau=0.0)
        assert np.array_equal(base, np.asarray(expr.getOutput().values))

    def test_self_exclusion_survives_sharding(self, data):
        """knn on a single dataset excludes self-pairs through the RSELF
        remap: the shard tree is never the query tree, so the unsharded
        diagonal test can't apply."""
        _, R = data
        base = knn(R, k=3)
        sharded = knn(R, k=3, shards=2)
        _assert_matches("tie-aware", base, sharded)
        n = len(R)
        assert not np.any(sharded[1] == np.arange(n)[:, None])

    def test_weighted_problem_sharded_process(self, data):
        """Barnes-Hut carries reference weights (``rw`` is an array on
        the shard side, None on the query side) — the worker's
        none_names must not clobber it."""
        Q, _ = data
        w = np.full(len(Q), 0.5)
        base = barnes_hut_potential(Q, w, theta=1e-9)
        sharded = barnes_hut_potential(Q, w, theta=1e-9,
                                       **dict(PAR, shards=2))
        np.testing.assert_allclose(base, sharded, rtol=1e-12, atol=0)

    def test_uncached_sharded_process_releases_blocks(self, data):
        """cache=False has no program token: the q + per-shard blocks
        are ephemeral and released after the run."""
        Q, R = data
        base = kde(Q, R, bandwidth=0.7, tau=0.0)
        before = shm.shared_block_stats()["blocks"]
        sharded = kde(Q, R, bandwidth=0.7, tau=0.0, cache=False,
                      **dict(PAR, shards=2))
        np.testing.assert_allclose(base, sharded, rtol=1e-12, atol=0)
        assert shm.shared_block_stats()["blocks"] == before


class TestApproximationEnvelope:
    """kde's tau criterion and Barnes-Hut's theta acceptance act on
    tree-node geometry, so per-shard trees make different (but equally
    valid) approximation decisions.  The contract under sharding is the
    method's documented error envelope, not bit-identity."""

    def test_kde_tau_error_envelope(self, data):
        Q, R = data
        tau = 1e-3
        exact = kde(Q, R, bandwidth=0.7, tau=0.0)
        for opts in ({}, {"shards": 2}, {"shards": 4}):
            approx = kde(Q, R, bandwidth=0.7, tau=tau, **opts)
            assert np.max(np.abs(approx - exact)) <= tau * len(R)

    def test_barnes_hut_theta_error_envelope(self, data):
        Q, _ = data
        w = np.full(len(Q), 0.5)
        exact = barnes_hut_potential(Q, w, theta=1e-9)
        for opts in ({}, {"shards": 2}):
            approx = barnes_hut_potential(Q, w, theta=0.4, **opts)
            np.testing.assert_allclose(approx, exact, rtol=2e-2)


class TestCrossShardBroadcast:
    def test_inline_wholesale_kill(self):
        """Balanced far/near clusters: after the first bounded round the
        far shard's root promise key cannot beat the worst global bound
        and the shard is killed wholesale — with the output still exact."""
        Q, R = _clustered(15000, 15000, 256)
        base = knn(Q, R, k=5, cache=False)
        expr = PortalExpr("shard-kill-inline")
        expr.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
        expr.addLayer((PortalOp.KARGMIN, 5), Storage(R, name="reference"),
                      PortalFunc.EUCLIDEAN)
        with collect() as counters:
            out = expr.execute(shards=2, cache=False)
        stats = expr.stats()
        assert stats["shard"]["count"] == 2
        assert stats["shard"]["pruned"] >= 1
        assert stats["shard"]["rounds"] >= 2
        assert counters.get("shard.pruned") >= 1
        _assert_matches("tie-aware", base,
                        (np.asarray(out.values), np.asarray(out.indices)))

    def test_process_wholesale_kill(self):
        """Process path: paused phase-1 tasks on the dominated shard are
        killed against the broadcast bound (wholesale and/or per-task)."""
        Q, R = _clustered(8000, 30000, 3000)
        base = knn(Q, R, k=5, cache=False)
        expr = PortalExpr("shard-kill-process")
        expr.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
        expr.addLayer((PortalOp.KARGMIN, 5), Storage(R, name="reference"),
                      PortalFunc.EUCLIDEAN)
        out = expr.execute(shards=2, cache=False, **PAR)
        stats = expr.stats()
        assert stats["shard"]["count"] == 2
        assert stats["shard"]["pruned"] + stats["shard"]["tasks_pruned"] >= 1
        _assert_matches("tie-aware", base,
                        (np.asarray(out.values), np.asarray(out.indices)))

    def test_per_shard_work_bounded_by_unsharded(self, data):
        """Each shard traverses a strict subset of the reference set, so
        no single shard can run more base-case pairs than the unsharded
        traversal — and the per-shard stats must say so."""
        Q, R = data
        with collect() as counters:
            knn(Q, R, k=5)
        unsharded_pairs = counters.get("traversal.base_case_pairs")
        assert unsharded_pairs > 0
        expr = PortalExpr("shard-stats")
        expr.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
        expr.addLayer((PortalOp.KARGMIN, 5), Storage(R, name="reference"),
                      PortalFunc.EUCLIDEAN)
        expr.execute(shards=2)
        per_shard = expr.stats()["shard"]["per_shard"]
        assert len(per_shard) == 2
        for st in per_shard:
            assert 0 < st["base_case_pairs"] <= unsharded_pairs


class TestShardStats:
    def test_stats_block_shape(self, data):
        Q, R = data
        expr = PortalExpr("shard-stats-shape")
        expr.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
        expr.addLayer(PortalOp.SUM, Storage(R, name="reference"),
                      PortalFunc.GAUSSIAN, bandwidth=0.7)
        expr.execute(shards=3)
        sh = expr.stats()["shard"]
        assert sh["count"] == 3
        assert sh["rounds"] >= 1
        assert sh["pruned"] == 0  # no bound rule on a plain sum
        assert len(sh["per_shard"]) == 3

    def test_counters_flow(self, data):
        Q, R = data
        clear_caches()
        with collect() as counters:
            kde(Q, R, bandwidth=0.7, shards=2)
        d = counters.as_dict()
        assert d["shard.runs"] == 1
        assert d["shard.builds"] == 2


class TestPlanning:
    def test_partition_tiles_exactly(self):
        rng = np.random.default_rng(0)
        pts = rng.standard_normal((257, 3))
        parts = plan_shards(pts, 4)
        assert len(parts) == 4
        joined = np.sort(np.concatenate(parts))
        assert np.array_equal(joined, np.arange(257))
        for p in parts:
            assert np.all(np.diff(p) > 0)  # ascending, unique

    def test_balanced_and_deterministic(self):
        rng = np.random.default_rng(1)
        pts = rng.standard_normal((4096, 2))
        a = plan_shards(pts, 8)
        b = plan_shards(pts, 8)
        sizes = sorted(len(p) for p in a)
        assert sizes[-1] - sizes[0] <= 1  # median cuts halve exactly
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_spatial_compactness(self):
        """The split is a median cut on the widest dimension: two
        well-separated clusters land in different shards."""
        Q, R = _clustered(100, 100, 1)
        parts = plan_shards(R, 2)
        labels = np.concatenate([np.zeros(100), np.ones(100)])
        for p in parts:
            assert len(np.unique(labels[p])) == 1


class TestResolution:
    def test_defaults_and_explicit(self):
        assert resolve_shard_count(None, 10_000) == 1
        assert resolve_shard_count(1, 10_000) == 1
        assert resolve_shard_count(3, 10_000) == 3
        assert resolve_shard_count(64, 10) == 10  # clamped to nr

    def test_auto_small_reference_stays_unsharded(self):
        assert resolve_shard_count("auto", AUTO_SHARD_MIN_POINTS - 1,
                                   workers=8) == 1

    def test_auto_scales_with_workers_and_size(self):
        nr = 4 * AUTO_SHARD_MIN_POINTS
        assert resolve_shard_count("auto", nr, workers=8) == 4
        assert resolve_shard_count("auto", nr, workers=2) == 2

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            resolve_shard_count(0, 100)

    def test_option_validation(self):
        assert CompileOptions.from_dict({"shards": "auto"}).shards == "auto"
        assert CompileOptions.from_dict({"shards": "4"}).shards == 4
        with pytest.raises(SpecificationError, match="shards"):
            CompileOptions.from_dict({"shards": "many"})
        with pytest.raises(SpecificationError, match="shards"):
            CompileOptions.from_dict({"shards": 0})

    def test_env_override_applies_when_not_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "2")
        assert CompileOptions.from_dict({}).shards == 2
        monkeypatch.setenv("REPRO_SHARDS", "auto")
        assert CompileOptions.from_dict({}).shards == "auto"

    def test_explicit_option_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "8")
        assert CompileOptions.from_dict({"shards": 2}).shards == 2

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "lots")
        with pytest.raises(SpecificationError, match="shards"):
            CompileOptions.from_dict({})


class TestWorkersEnv:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert default_workers() == 6

    def test_env_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert default_workers() == 1

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            default_workers()

    def test_affinity_fallback_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: {0, 1, 2, 3}, raising=False)
        assert default_workers() == 4


class TestSharedMemoryConcurrency:
    """The sharded layout multiplies blocks per program (``{token}::q``
    plus ``{token}::r{i}``), so the registry's LRU and teardown now run
    under real concurrency: per-shard publishes come from the build
    pool's threads."""

    def test_lru_eviction_under_threaded_publish(self):
        try:
            n_threads, per_thread = 4, shm.MAX_BLOCKS
            start = threading.Barrier(n_threads)
            errors = []

            def worker(t):
                try:
                    start.wait()
                    for i in range(per_thread):
                        shm.publish_arrays(f"t-conc-{t}-{i}",
                                           {"x": np.arange(8.0)})
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(t,))
                       for t in range(n_threads)]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
            assert not errors
            assert shm.shared_block_stats()["blocks"] <= shm.MAX_BLOCKS
        finally:
            shm.release_shared_blocks()

    def test_release_during_concurrent_publish(self):
        """release_shared_blocks racing live publishers must neither
        deadlock nor leak: every segment is eventually closed and a
        final release leaves the registry empty.

        Iteration-bounded, not wall-clock-bounded: each publisher does a
        fixed amount of work and the releaser races it until the last
        publisher finishes, so the soak's duration scales with the host
        instead of a hardcoded sleep."""
        n_publishers, per_publisher = 3, 80
        publishers_done = threading.Event()
        live = [n_publishers]
        lock = threading.Lock()
        errors = []

        def publisher(t):
            try:
                for i in range(per_publisher):
                    shm.publish_arrays(f"t-race-{t}-{i % 6}",
                                       {"x": np.arange(16.0)})
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                with lock:
                    live[0] -= 1
                    if live[0] == 0:
                        publishers_done.set()

        def releaser():
            try:
                while not publishers_done.is_set():
                    shm.release_shared_blocks()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = ([threading.Thread(target=publisher, args=(t,))
                    for t in range(n_publishers)]
                   + [threading.Thread(target=releaser)])
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        shm.release_shared_blocks()
        assert not errors
        assert shm.shared_block_stats()["blocks"] == 0

    def test_same_token_publish_race_returns_one_block(self):
        """Concurrent publishes of one token converge on a single
        segment (losers are discarded and closed)."""
        try:
            names = [None] * 8
            start = threading.Barrier(8)

            def worker(t):
                start.wait()
                names[t], _ = shm.publish_arrays(
                    "t-same", {"x": np.arange(4.0)})

            threads = [threading.Thread(target=worker, args=(t,))
                       for t in range(8)]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
            assert len(set(names)) == 1
            assert shm.shared_block_stats()["blocks"] == 1
        finally:
            shm.release_block("t-same")
