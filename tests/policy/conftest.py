"""Shared fixtures for the policy suite: every test runs against its own
policy file so nothing ever touches the user's real cache."""

import pytest

from repro.policy import reset_policy_store


@pytest.fixture(autouse=True)
def policy_path(tmp_path, monkeypatch):
    """Point the persistent policy store at a per-test file."""
    path = tmp_path / "policy.json"
    monkeypatch.setenv("REPRO_POLICY_PATH", str(path))
    reset_policy_store()
    yield path
    reset_policy_store()
