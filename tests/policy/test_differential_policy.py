"""Policy-routing differential battery: a policy-selected configuration
must compute exactly what the static default computes.

Nine problems × three trees.  Each combo runs once under the static
default, then again with a forged policy-cache entry forcing a
*different* valid configuration (rotating through the traversal
engines, leaf sizes and executors the search enumerates), and the
outputs are compared with the repo's differential discipline: exact for
indices/index lists/scalars, float tolerance for value arrays.  A final
case runs a real measured search end-to-end.
"""

import pytest

from repro.backend.jit import CompileOptions
from repro.policy import PolicyEntry, policy_key, policy_store

from tests.backend.test_differential import (
    _assert_same, _extract, make_problem,
)

SEED = 101
# the Table IV problem set (two_point is the self-join oddity the
# serving battery also excludes)
NINE = ["knn", "nearest", "kde", "naive_bayes", "range_search",
        "range_count", "hausdorff", "em", "barnes_hut"]
TREES = ("kd", "ball", "octree")

#: forced configurations, rotated per tree so every engine / executor /
#: leaf size in the search space is exercised against the default
FORCED = [
    {"traversal": "stack", "executor": "serial", "codegen": "numpy",
     "leaf_size": 32, "shards": 1},
    {"traversal": "batched", "executor": "thread", "codegen": "numpy",
     "leaf_size": 128, "shards": 1},
    {"traversal": "bounded-batched", "executor": "process",
     "codegen": "numpy", "leaf_size": 16, "shards": 1},
]


@pytest.mark.parametrize("tree", TREES)
@pytest.mark.parametrize("name", NINE)
def test_policy_config_matches_static(name, tree, policy_path):
    build, kind, base = make_problem(name, SEED)
    opts = dict(base, tree=tree)

    ref_expr = build()
    ref = _extract(ref_expr.execute(**opts), kind)

    config = FORCED[TREES.index(tree)]
    keyed = build()
    keyed.validate()
    key = policy_key(keyed.layers, CompileOptions.from_dict(dict(opts)))
    policy_store().put(key, PolicyEntry(config=dict(config)))

    expr = build()
    got = _extract(expr.execute(**opts, policy="auto"), kind)
    st = expr.stats()
    assert st["policy"]["source"] == "policy-cache"
    assert st["policy"]["applied"]  # the forced config really routed
    _assert_same(got, ref, kind)


def test_real_search_matches_static(policy_path):
    build, kind, base = make_problem("knn", SEED)
    ref = _extract(build().execute(**base), kind)
    expr = build()
    got = _extract(expr.execute(**base, policy="search"), kind)
    assert expr.stats()["policy"]["source"] == "fresh-search"
    _assert_same(got, ref, kind)
