"""Policy-key feature extraction: the class digest must group runs that
behave alike and separate runs that don't."""

import pytest

from repro.backend.jit import CompileOptions
from repro.policy import PolicyKey, policy_key, size_bucket

from tests.backend.test_differential import make_problem

SEED = 101


def _layers(name, **opts):
    build, _, base = make_problem(name, SEED)
    expr = build()
    expr.validate()
    return expr.layers, CompileOptions.from_dict({**base, **opts})


class TestSizeBucket:
    def test_log2_buckets(self):
        assert size_bucket(0) == 0
        assert size_bucket(1) == 0
        assert size_bucket(2) == 1
        assert size_bucket(1024) == 10
        # within a bucket: engine trade-offs are stable
        assert size_bucket(1500) == 10
        assert size_bucket(2048) == 11


class TestKeyString:
    def test_roundtrip(self):
        layers, opts = _layers("knn")
        key = policy_key(layers, opts)
        assert PolicyKey.from_str(key.as_str()) == key

    def test_roundtrip_without_k(self):
        layers, opts = _layers("kde")
        key = policy_key(layers, opts)
        assert key.k is None
        assert PolicyKey.from_str(key.as_str()) == key


class TestProgramClass:
    def test_parameter_values_abstracted(self):
        # kde and naive_bayes are the same program at different
        # bandwidths: one tuned decision must serve both.
        a, opts_a = _layers("kde")
        b, opts_b = _layers("naive_bayes")
        assert policy_key(a, opts_a) == policy_key(b, opts_b)

    def test_different_problems_never_share(self):
        knn, o1 = _layers("knn")
        kde, o2 = _layers("kde")
        assert (policy_key(knn, o1).program_class
                != policy_key(kde, o2).program_class)

    def test_bound_vs_stateless_separated(self):
        # nearest (MIN, bound-rule) vs range_count (SUM over an
        # indicator): different traversal engines, different classes.
        near, o1 = _layers("nearest")
        cnt, o2 = _layers("range_count")
        assert (policy_key(near, o1).program_class
                != policy_key(cnt, o2).program_class)

    def test_approximation_separates(self):
        exact, o1 = _layers("kde")
        approx_layers, o2 = _layers("kde", tau=1e-3)
        assert (policy_key(exact, o1).program_class
                != policy_key(approx_layers, o2).program_class)


class TestKeyDimensions:
    @pytest.mark.parametrize("tree", ["kd", "ball", "octree"])
    def test_tree_kind_in_key(self, tree):
        layers, opts = _layers("knn", tree=tree)
        assert policy_key(layers, opts).tree == tree

    def test_nq_override_rebuckets(self):
        layers, opts = _layers("knn")
        base = policy_key(layers, opts)
        warm = policy_key(layers, opts, nq=4096)
        assert warm.nq_bucket == 12
        assert warm.nq_bucket != base.nq_bucket
        assert warm.program_class == base.program_class
