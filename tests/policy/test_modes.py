"""Policy mode semantics: static / auto / search, precedence of
explicit options, env plumbing, and failure-mode degradation."""

import pytest

from repro.backend.jit import CompileOptions
from repro.dsl import SpecificationError
from repro.observe import collect
from repro.policy import PolicyEntry, policy_key, policy_store

from tests.backend.test_differential import make_problem

SEED = 101
CONFIG = {"traversal": "stack", "executor": "serial",
          "codegen": "numpy", "leaf_size": 32, "shards": 1}


def _expr(name="knn"):
    build, _, base = make_problem(name, SEED)
    return build, base


def seed_entry(build, base, config=CONFIG, **entry_kw):
    """Forge a policy entry keyed exactly as the compiler will key it."""
    expr = build()
    expr.validate()
    key = policy_key(expr.layers, CompileOptions.from_dict(dict(base)))
    policy_store().put(key, PolicyEntry(config=dict(config), **entry_kw))
    return key


class TestStatic:
    def test_default_is_static(self, policy_path):
        build, base = _expr()
        expr = build()
        expr.execute(**base)
        assert expr.stats()["policy"] == {"source": "static-auto"}
        assert not policy_path.exists()

    def test_static_ignores_seeded_entries(self, policy_path):
        build, base = _expr()
        seed_entry(build, base)
        expr = build()
        expr.execute(**base)
        st = expr.stats()["policy"]
        assert st["source"] == "static-auto"
        # stack was not applied
        assert expr.stats()["traversal_engine"] != "stack"


class TestAuto:
    def test_miss_falls_back_to_static(self, policy_path):
        build, base = _expr()
        expr = build()
        with collect() as counters:
            expr.execute(**base, policy="auto")
        assert expr.stats()["policy"]["source"] == "static-auto"
        assert counters.as_dict()["policy.miss"] == 1
        assert not policy_path.exists()  # auto never searches on a miss

    def test_hit_applies_cached_config(self, policy_path):
        build, base = _expr()
        seed_entry(build, base)
        expr = build()
        with collect() as counters:
            expr.execute(**base, policy="auto")
        st = expr.stats()
        assert st["policy"]["source"] == "policy-cache"
        assert st["policy"]["applied"]["traversal"] == "stack"
        assert st["traversal_engine"] == "stack"
        assert counters.as_dict()["policy.hit"] == 1

    def test_env_knob_selects_auto(self, policy_path, monkeypatch):
        monkeypatch.setenv("REPRO_POLICY", "auto")
        build, base = _expr()
        seed_entry(build, base)
        expr = build()
        expr.execute(**base)
        assert expr.stats()["policy"]["source"] == "policy-cache"

    def test_corrupt_file_degrades_to_static(self, policy_path):
        policy_path.write_text("{ definitely not json")
        build, base = _expr()
        expr = build()
        with collect() as counters:
            expr.execute(**base, policy="auto")
        assert expr.stats()["policy"]["source"] == "static-auto"
        snap = counters.as_dict()
        assert snap["policy.load_failed"] == 1
        assert snap["policy.miss"] == 1


class TestSearch:
    def test_search_persists_and_reports(self, policy_path):
        build, base = _expr()
        expr = build()
        with collect() as counters:
            expr.execute(**base, policy="search")
        st = expr.stats()["policy"]
        assert st["source"] == "fresh-search"
        assert set(st["config"]) == {"traversal", "executor", "codegen",
                                     "leaf_size", "shards"}
        assert policy_path.exists()
        assert counters.as_dict()["policy.search"] == 1

    def test_second_run_hits_in_auto(self, policy_path):
        build, base = _expr()
        build().execute(**base, policy="search")
        expr = build()
        expr.execute(**base, policy="auto")
        assert expr.stats()["policy"]["source"] == "policy-cache"

    def test_search_reuses_fresh_entry(self, policy_path):
        build, base = _expr()
        build().execute(**base, policy="search")
        expr = build()
        with collect() as counters:
            expr.execute(**base, policy="search")
        assert expr.stats()["policy"]["source"] == "policy-cache"
        assert "policy.search" not in counters.as_dict()


class TestPrecedence:
    def test_explicit_options_win(self, policy_path):
        build, base = _expr()
        seed_entry(build, base)
        expr = build()
        expr.execute(**base, policy="auto", traversal="batched",
                     leaf_size=128)
        st = expr.stats()
        applied = st["policy"]["applied"]
        assert "traversal" not in applied
        assert "leaf_size" not in applied
        # the cached 'stack' choice must not override the explicit knob
        assert st["traversal_engine"] != "stack"

    def test_env_knobs_count_as_explicit(self, policy_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        build, base = _expr()
        seed_entry(build, base,
                   config=dict(CONFIG, executor="process"))
        expr = build()
        expr.execute(**base, policy="auto", parallel=True)
        applied = expr.stats()["policy"]["applied"]
        assert "executor" not in applied

    def test_unknown_mode_rejected(self, policy_path):
        build, base = _expr()
        with pytest.raises(SpecificationError, match="policy"):
            build().execute(**base, policy="aggressive")


class TestStatsSummary:
    def test_summary_includes_policy_block(self, policy_path):
        build, base = _expr()
        seed_entry(build, base)
        expr = build()
        expr.execute(**base, policy="auto")
        pol = expr.stats()["policy"]
        assert pol["key"].count(":") == 5
        assert pol["config"]["leaf_size"] == 32
