"""Cross-process persistence: a policy tuned in one process must be a
cache hit in a completely fresh one."""

import json
import os
import subprocess
import sys

from repro.observe import collect

from tests.backend.test_differential import make_problem

SEED = 101

# Writes one tuned entry into REPRO_POLICY_PATH and prints its key.
# The problem construction mirrors make_problem("knn", 101) exactly —
# the policy key hashes program *structure* and bucketed sizes, so the
# child only has to match shapes and layer shapes, not array contents.
_CHILD = r"""
import numpy as np
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.policy import ensure_policy

rng = np.random.default_rng(101)
Q = rng.normal(size=(28, 3))
R = rng.normal(size=(33, 3))
e = PortalExpr()
e.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
e.addLayer((PortalOp.KARGMIN, 3), Storage(R, name="reference"),
           PortalFunc.EUCLIDEAN)
key, entry, source = ensure_policy(e.layers, {})
print(key.as_str())
print(source)
"""


def test_child_process_tunes_parent_hits(policy_path):
    env = dict(os.environ, REPRO_POLICY_PATH=str(policy_path))
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run([sys.executable, "-c", _CHILD], env=env,
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    child_key, child_source = proc.stdout.split()
    assert child_source == "fresh-search"
    assert policy_path.exists()

    # Fresh process-side view (the autouse cache fixture reset the
    # in-memory store): the parent's auto run must hit the child's entry.
    build, _, base = make_problem("knn", SEED)
    expr = build()
    with collect() as counters:
        expr.execute(**base, policy="auto")
    st = expr.stats()["policy"]
    assert st["source"] == "policy-cache"
    assert st["key"] == child_key
    assert counters.as_dict()["policy.hit"] == 1

    # ... and the hit was counted back into the persisted entry.
    payload = json.loads(policy_path.read_text())
    assert payload["entries"][child_key]["config"] == st["config"]
