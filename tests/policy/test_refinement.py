"""Counter-driven online refinement: live runs whose observed profile
deviates from the tuning measurement retire the cached decision."""

import pytest

from repro.backend.native import native_available
from repro.observe import collect
from repro.policy import policy_store

from tests.policy.test_modes import CONFIG, _expr, seed_entry


def _live_ref(build, base):
    """The problem's true counter profile (from one static run)."""
    expr = build()
    expr.execute(**base)
    t = expr.stats()["traversal"]
    return {"prune_rate": t["prune_rate"],
            "exact_pair_fraction": t["exact_pair_fraction"]}


def _sizes(build):
    expr = build()
    return expr.layers[0].storage.n, expr.layers[-1].storage.n


class TestDeviation:
    def test_prune_deviation_marks_stale(self, policy_path):
        build, base = _expr()
        nq, nr = _sizes(build)
        # Tuning claims 99% prune; this problem prunes almost nothing.
        key = seed_entry(build, base, ref={"prune_rate": 0.99},
                         measured_nq=nq, measured_nr=nr)
        expr = build()
        with collect() as counters:
            expr.execute(**base, policy="auto")
        assert expr.stats()["policy"]["source"] == "policy-cache"
        assert counters.as_dict()["policy.stale_marked"] == 1
        assert policy_store().get(key).stale

    def test_pair_fraction_deviation_marks_stale(self, policy_path):
        build, base = _expr()
        nq, nr = _sizes(build)
        live = _live_ref(build, base)
        key = seed_entry(
            build, base,
            ref={"prune_rate": live["prune_rate"],
                 "exact_pair_fraction": live["exact_pair_fraction"] / 100},
            measured_nq=nq, measured_nr=nr)
        build_expr = build()
        with collect() as counters:
            build_expr.execute(**base, policy="auto")
        assert counters.as_dict()["policy.stale_marked"] == 1
        assert policy_store().get(key).stale

    def test_matching_profile_stays_fresh(self, policy_path):
        build, base = _expr()
        nq, nr = _sizes(build)
        # The forged config must match the profile source: both static.
        static_cfg = dict(CONFIG, traversal="bounded-batched",
                          leaf_size=64)
        live = _live_ref(build, base)
        key = seed_entry(build, base, config=static_cfg, ref=live,
                         measured_nq=nq, measured_nr=nr)
        expr = build()
        with collect() as counters:
            expr.execute(**base, policy="auto")
        snap = counters.as_dict()
        assert snap.get("policy.observe_ok", 0) >= 1
        assert "policy.stale_marked" not in snap
        assert not policy_store().get(key).stale

    def test_size_window_guards_pair_fraction(self, policy_path):
        build, base = _expr()
        live = _live_ref(build, base)
        # Entry measured at a much larger size: its exact-pair fraction
        # is not comparable and must not trigger staleness by itself.
        key = seed_entry(
            build, base,
            config=dict(CONFIG, traversal="bounded-batched", leaf_size=64),
            ref={"prune_rate": live["prune_rate"],
                 "exact_pair_fraction": live["exact_pair_fraction"] / 100},
            measured_nq=4096, measured_nr=16384)
        expr = build()
        expr.execute(**base, policy="auto")
        assert not policy_store().get(key).stale


class TestStaleResearch:
    def test_stale_entry_triggers_research(self, policy_path):
        build, base = _expr()
        key = seed_entry(build, base)
        policy_store().mark_stale(key)
        expr = build()
        with collect() as counters:
            expr.execute(**base, policy="auto")
        snap = counters.as_dict()
        assert snap["policy.stale_research"] == 1
        assert snap["policy.search"] == 1
        assert expr.stats()["policy"]["source"] == "fresh-search"
        fresh = policy_store().get(key)
        assert fresh is not None and not fresh.stale

    def test_search_mode_also_replaces_stale(self, policy_path):
        build, base = _expr()
        key = seed_entry(build, base)
        policy_store().mark_stale(key)
        expr = build()
        expr.execute(**base, policy="search")
        assert expr.stats()["policy"]["source"] == "fresh-search"
        assert not policy_store().get(key).stale


@pytest.mark.skipif(native_available(),
                    reason="needs a host without the numba JIT")
class TestNativeFallback:
    def test_unavailable_native_retires_entry(self, policy_path):
        build, base = _expr()
        key = seed_entry(build, base,
                         config=dict(CONFIG, codegen="native"))
        expr = build()
        with collect() as counters:
            expr.execute(**base, policy="auto")
        snap = counters.as_dict()
        assert snap["policy.native_unavailable"] == 1
        assert snap["backend.native.fallback"] == 1
        assert policy_store().get(key).stale
        assert expr.stats()["policy"]["native_fallback"] is True
        # the run itself completed on the numpy target
        assert expr.stats()["codegen"] == "numpy"
