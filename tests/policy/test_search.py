"""Unit tests for the measured policy search: pruned enumeration,
coordinate descent over a scripted cost surface, and subsampling."""

import numpy as np
import pytest

from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.policy.search import (
    Candidate, _stride_subsample, enumerate_axes, search_policy,
    static_candidate, subsampled_layers,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestEnumerateAxes:
    def test_single_worker_prunes_parallel_axes(self):
        axes = enumerate_axes(1000, 2000, bound_rule=True, workers=1)
        assert axes["executor"] == ["serial"]
        assert axes["shards"] == [1]
        assert axes["traversal"] == ["bounded-batched", "stack"]

    def test_multi_worker_enables_executors_and_shards(self):
        axes = enumerate_axes(4096, 16384, bound_rule=False, workers=4)
        assert axes["executor"] == ["serial", "thread", "process"]
        assert axes["traversal"][0] == "batched"
        assert axes["shards"] == [1, 4]

    def test_small_reference_never_sharded(self):
        axes = enumerate_axes(1000, 2000, bound_rule=False, workers=8)
        assert axes["shards"] == [1]

    def test_stack_dropped_at_scale(self):
        axes = enumerate_axes(1 << 12, 1 << 12, bound_rule=True, workers=1)
        assert axes["traversal"] == ["bounded-batched"]


class TestCandidate:
    def test_label_roundtrips_options(self):
        cand = Candidate(traversal="stack", executor="process",
                         codegen="numpy", leaf_size=32, shards=2)
        opts = cand.options()
        assert opts["parallel"] is True and opts["executor"] == "process"
        assert opts["traversal"] == "stack" and opts["shards"] == 2

    def test_serial_disables_parallel(self):
        opts = static_candidate(True).options()
        assert opts["parallel"] is False
        assert "executor" not in opts


class TestSearchPolicy:
    def _cost(self, clock):
        """Scripted surface: thread executor halves the cost, leaf 32
        beats 64, everything else is neutral."""

        def run(cand):
            cost = 8.0
            if cand.executor == "thread":
                cost /= 2
            if cand.leaf_size == 32:
                cost -= 1
            clock.now += cost

        return run

    def test_descends_to_scripted_optimum(self):
        clock = FakeClock()
        axes = {
            "executor": ["serial", "thread"],
            "traversal": ["bounded-batched"],
            "leaf_size": [32, 64],
            "codegen": ["numpy"],
            "shards": [1],
        }
        best, timings = search_policy(
            self._cost(clock), axes, static_candidate(True),
            repeats=1, budget_s=None, clock=clock)
        assert best.executor == "thread"
        assert best.leaf_size == 32
        # incumbent configurations are never re-measured
        assert len(timings) == len(set(timings))

    def test_budget_keeps_best_so_far(self):
        clock = FakeClock()
        axes = {"executor": ["serial", "thread"], "leaf_size": [32, 64]}
        best, timings = search_policy(
            self._cost(clock), axes, static_candidate(True),
            repeats=1, budget_s=10.0, clock=clock)
        # Budget died during/after the executor sweep; later axes were
        # skipped but a valid best candidate still came back.
        assert isinstance(best, Candidate)
        assert timings


class TestSubsample:
    def test_stride_is_spatially_unbiased(self):
        data = np.arange(100, dtype=float).reshape(-1, 1)
        sub = _stride_subsample(data, 10)
        assert len(sub) == 10
        # spans the whole range, not one corner
        assert sub[0, 0] == 0.0 and sub[-1, 0] >= 90.0

    def test_small_data_untouched(self):
        data = np.arange(8, dtype=float).reshape(-1, 1)
        assert _stride_subsample(data, 10) is data

    def test_subsampled_layers_shares_storage_identity(self):
        rng = np.random.default_rng(3)
        data = Storage(rng.normal(size=(100, 3)), name="pts")
        e = PortalExpr("two-point")
        e.addLayer(PortalOp.SUM, data)
        e.addLayer(PortalOp.SUM, data, PortalFunc.GAUSSIAN, bandwidth=1.0)
        build, nq, nr = subsampled_layers(e.layers, max_q=10, max_r=40)
        sub = build()
        # monochromatic problems must stay monochromatic (self-pair
        # exclusion hangs off storage identity)
        assert sub.layers[0].storage is sub.layers[1].storage
        assert nq == nr == 10

    def test_subsampled_layers_caps_sizes(self):
        rng = np.random.default_rng(4)
        e = PortalExpr("knn")
        e.addLayer(PortalOp.FORALL,
                   Storage(rng.normal(size=(500, 3)), name="q"))
        e.addLayer((PortalOp.KARGMIN, 3),
                   Storage(rng.normal(size=(900, 3)), name="r"),
                   PortalFunc.EUCLIDEAN)
        build, nq, nr = subsampled_layers(e.layers, max_q=50, max_r=100)
        assert nq <= 50 and nr <= 100
        sub = build()
        out = sub.execute()
        assert np.asarray(out.indices).shape == (nq, 3)
