"""Register-time policy warmup in the serving layer: the policy cache
is consulted (or populated) at the admission batch size during
``register``, so real traffic never pays the search."""

import asyncio

import numpy as np

from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.policy import policy_store
from repro.serve import AdmissionConfig, PortalService

ADMISSION = AdmissionConfig(batch_max=16)


def _expr(seed=7):
    rng = np.random.default_rng(seed)
    Q = rng.normal(size=(24, 3))
    R = rng.normal(size=(64, 3))
    e = PortalExpr("knn-serve")
    e.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
    e.addLayer((PortalOp.KARGMIN, 3), Storage(R, name="reference"),
               PortalFunc.EUCLIDEAN)
    return e


def _register(options):
    async def go():
        service = PortalService()
        try:
            await service.register(_expr(), options=options,
                                   admission=ADMISSION)
        finally:
            await service.close()
        return service.counters.as_dict()

    return asyncio.run(go())


def test_static_mode_never_consults(policy_path):
    counters = _register({})
    assert "policy.warm_consult" not in counters
    assert not policy_path.exists()


def test_auto_mode_consults_and_misses_cold(policy_path):
    counters = _register({"policy": "auto"})
    assert counters["policy.warm_consult"] == 1
    assert counters["policy.miss"] == 1
    assert not policy_path.exists()  # auto warm never searches


def test_search_mode_tunes_at_register_time(policy_path):
    counters = _register({"policy": "search"})
    assert counters["policy.warm_consult"] == 1
    assert counters["policy.search"] == 1
    assert policy_path.exists()
    assert len(policy_store()) == 1


def test_auto_mode_hits_after_search_register(policy_path):
    _register({"policy": "search"})
    counters = _register({"policy": "auto"})
    assert counters["policy.warm_consult"] == 1
    assert counters["policy.hit"] >= 1


def test_queries_after_warm_match_direct_execute(policy_path):
    expr = _expr()
    direct = np.asarray(expr.execute().indices)

    async def go():
        service = PortalService()
        try:
            hid = await service.register(_expr(), options={"policy": "search"},
                                         admission=ADMISSION)
            rows = _expr().layers[0].storage.data
            res = await service.query(hid, rows, k=3)
            return np.asarray(res.indices)
        finally:
            await service.close()

    served = asyncio.run(go())
    assert np.array_equal(served, direct)
