"""Persistent policy store: durability, versioning, and the guarantee
that no failure mode ever raises into an execution."""

import json

from repro.backend import cache as cache_mod
from repro.observe import collect
from repro.policy import (
    POLICY_SCHEMA, PolicyEntry, PolicyKey, PolicyStore, host_fingerprint,
)
from repro.policy import store as store_mod

KEY = PolicyKey(program_class="cafe0123", tree="kd", nq_bucket=8,
                nr_bucket=9, dim=3, k=4)
CONFIG = {"traversal": "bounded-batched", "executor": "serial",
          "codegen": "numpy", "leaf_size": 64, "shards": 1}


def _entry(**kw):
    return PolicyEntry(config=dict(CONFIG), **kw)


class TestRoundtrip:
    def test_put_get(self, policy_path):
        store = PolicyStore()
        store.put(KEY, _entry())
        got = store.get(KEY)
        assert got is not None and got.config == CONFIG
        assert policy_path.exists()

    def test_fresh_store_reads_back(self, policy_path):
        PolicyStore().put(KEY, _entry(ref={"prune_rate": 0.5}))
        got = PolicyStore().get(KEY)
        assert got is not None
        assert got.ref == {"prune_rate": 0.5}
        assert got.created > 0

    def test_hits_counted(self, policy_path):
        store = PolicyStore()
        store.put(KEY, _entry())
        store.get(KEY)
        store.get(KEY)
        assert store.get(KEY).hits == 3

    def test_mark_stale_persists(self, policy_path):
        PolicyStore().put(KEY, _entry())
        with collect() as counters:
            assert PolicyStore().mark_stale(KEY)
        assert counters.as_dict()["policy.stale_marked"] == 1
        assert PolicyStore().get(KEY).stale

    def test_payload_is_wellformed_json(self, policy_path):
        PolicyStore().put(KEY, _entry())
        payload = json.loads(policy_path.read_text())
        assert payload["policy_schema"] == POLICY_SCHEMA
        assert payload["artifact_schema"] == cache_mod.ARTIFACT_SCHEMA
        assert payload["host"] == host_fingerprint()
        assert KEY.as_str() in payload["entries"]


class TestFailureModes:
    def test_corrupt_file_degrades(self, policy_path):
        policy_path.write_text("{ not json !!!")
        with collect() as counters:
            store = PolicyStore()
            assert store.get(KEY) is None
            assert len(store) == 0
        assert counters.as_dict()["policy.load_failed"] == 1

    def test_truncated_file_degrades(self, policy_path):
        PolicyStore().put(KEY, _entry())
        text = policy_path.read_text()
        policy_path.write_text(text[: len(text) // 2])
        with collect() as counters:
            assert PolicyStore().get(KEY) is None
        assert counters.as_dict()["policy.load_failed"] == 1

    def test_corrupt_file_overwritten_by_next_put(self, policy_path):
        policy_path.write_text("garbage")
        store = PolicyStore()
        store.put(KEY, _entry())
        assert PolicyStore().get(KEY) is not None

    def test_unknown_entry_fields_tolerated(self, policy_path):
        PolicyStore().put(KEY, _entry())
        payload = json.loads(policy_path.read_text())
        payload["entries"][KEY.as_str()]["future_field"] = 123
        policy_path.write_text(json.dumps(payload))
        assert PolicyStore().get(KEY) is not None


class TestVersioning:
    def test_artifact_schema_bump_drops_entries(self, policy_path,
                                                monkeypatch):
        PolicyStore().put(KEY, _entry())
        monkeypatch.setattr(cache_mod, "ARTIFACT_SCHEMA",
                            cache_mod.ARTIFACT_SCHEMA + 1)
        with collect() as counters:
            assert PolicyStore().get(KEY) is None
        assert counters.as_dict()["policy.schema_mismatch"] == 1

    def test_policy_schema_bump_drops_entries(self, policy_path,
                                              monkeypatch):
        PolicyStore().put(KEY, _entry())
        monkeypatch.setattr(store_mod, "POLICY_SCHEMA",
                            store_mod.POLICY_SCHEMA + 1)
        with collect() as counters:
            assert PolicyStore().get(KEY) is None
        assert counters.as_dict()["policy.schema_mismatch"] == 1

    def test_host_change_drops_entries(self, policy_path, monkeypatch):
        PolicyStore().put(KEY, _entry())
        monkeypatch.setattr(store_mod, "host_fingerprint",
                            lambda: "0000000000000000")
        with collect() as counters:
            assert PolicyStore().get(KEY) is None
        assert counters.as_dict()["policy.host_mismatch"] == 1


class TestLifecycle:
    def test_forget_rereads_file(self, policy_path):
        store = PolicyStore()
        store.put(KEY, _entry())
        # another writer updates the file behind this store's back
        other = PolicyStore()
        other.mark_stale(KEY)
        assert not store.get(KEY).stale  # cached in-memory view
        store.forget()
        assert store.get(KEY).stale

    def test_clear_empties_table_and_file(self, policy_path):
        store = PolicyStore()
        store.put(KEY, _entry())
        store.clear()
        assert len(PolicyStore()) == 0
