"""Tests for Barnes-Hut: force accuracy vs θ, potentials, integration."""

import numpy as np
import pytest

from repro.baselines import brute
from repro.problems import (
    barnes_hut_acceleration, barnes_hut_potential, leapfrog_step,
)


@pytest.fixture
def rng():
    return np.random.default_rng(23)


@pytest.fixture
def system(rng):
    pos = rng.normal(size=(400, 3))
    mass = rng.uniform(0.5, 2.0, size=400)
    return pos, mass


def rel_force_err(approx, exact):
    return np.linalg.norm(approx - exact) / np.linalg.norm(exact)


class TestAcceleration:
    def test_theta_zero_is_exact(self, system):
        pos, mass = system
        a = barnes_hut_acceleration(pos, mass, theta=0.0)
        assert np.allclose(a, brute.brute_forces(pos, mass), rtol=1e-10)

    def test_error_small_at_half_theta(self, system):
        pos, mass = system
        a = barnes_hut_acceleration(pos, mass, theta=0.5)
        assert rel_force_err(a, brute.brute_forces(pos, mass)) < 0.02

    def test_error_decreases_with_theta(self, system):
        pos, mass = system
        exact = brute.brute_forces(pos, mass)
        errs = [
            rel_force_err(barnes_hut_acceleration(pos, mass, theta=t), exact)
            for t in (1.0, 0.5, 0.2)
        ]
        assert errs[0] >= errs[1] >= errs[2]

    def test_approximation_actually_used(self, system):
        pos, mass = system
        _, stats = barnes_hut_acceleration(pos, mass, theta=0.7,
                                           return_stats=True)
        assert stats.approximated > 0

    def test_momentum_conserved_with_equal_masses(self, rng):
        # With exact pairwise forces (θ=0) total momentum change is 0.
        pos = rng.normal(size=(100, 3))
        mass = np.ones(100)
        a = barnes_hut_acceleration(pos, mass, theta=0.0)
        assert np.allclose((mass[:, None] * a).sum(axis=0), 0.0, atol=1e-8)

    def test_2d_systems(self, rng):
        pos = rng.normal(size=(150, 2))
        mass = np.ones(150)
        a = barnes_hut_acceleration(pos, mass, theta=0.3)
        exact = brute.brute_forces(pos, mass)
        assert rel_force_err(a, exact) < 0.02

    def test_dim_guard(self, rng):
        with pytest.raises(ValueError, match="d <= 3"):
            barnes_hut_acceleration(rng.normal(size=(10, 4)), np.ones(10))

    def test_mass_length_guard(self, rng):
        with pytest.raises(ValueError, match="length"):
            barnes_hut_acceleration(rng.normal(size=(10, 3)), np.ones(9))

    def test_quadrupole_reduces_error(self, system):
        pos, mass = system
        exact = brute.brute_forces(pos, mass)
        e1 = rel_force_err(
            barnes_hut_acceleration(pos, mass, theta=0.7, order=1), exact)
        e2 = rel_force_err(
            barnes_hut_acceleration(pos, mass, theta=0.7, order=2), exact)
        assert e2 < e1

    def test_quadrupole_exact_at_theta_zero(self, system):
        pos, mass = system
        a = barnes_hut_acceleration(pos, mass, theta=0.0, order=2)
        assert np.allclose(a, brute.brute_forces(pos, mass), rtol=1e-10)

    def test_quadrupole_of_symmetric_node_small(self, rng):
        # A node whose mass distribution is spherically symmetric has a
        # (numerically) tiny traceless quadrupole.
        from repro.problems.barnes_hut import _node_quadrupoles
        from repro.trees import build_octree

        v = rng.normal(size=(5000, 3))
        v /= np.linalg.norm(v, axis=1, keepdims=True)
        tree = build_octree(v, leaf_size=5000, weights=np.ones(5000))
        Q = _node_quadrupoles(tree)[0]
        assert np.abs(Q).max() / 5000 < 0.05
        assert abs(np.trace(Q)) / 5000 < 0.05   # traceless by construction

    def test_bad_order_rejected(self, system):
        pos, mass = system
        with pytest.raises(ValueError, match="order"):
            barnes_hut_acceleration(pos, mass, order=3)

    def test_parallel_matches_serial(self, system):
        pos, mass = system
        a1 = barnes_hut_acceleration(pos, mass, theta=0.5)
        a2 = barnes_hut_acceleration(pos, mass, theta=0.5, parallel=True,
                                     workers=3)
        assert np.allclose(a1, a2)


class TestPotentialDSL:
    def test_matches_brute(self, system):
        pos, mass = system
        phi = barnes_hut_potential(pos, mass, theta=0.3, fastmath=False)
        exact = brute.brute_potential(pos, mass)
        assert np.abs(phi - exact).max() / exact.max() < 0.01

    def test_uses_octree_and_mac(self, system):
        from repro.dsl import PortalExpr

        pos, mass = system
        phi = barnes_hut_potential(pos, mass, theta=0.5)
        assert phi.shape == (400,)


class TestIntegration:
    def test_leapfrog_two_body_orbit(self):
        # Circular two-body orbit: radius should stay bounded.
        pos = np.array([[1.0, 0.0, 0.0], [-1.0, 0.0, 0.0]])
        mass = np.array([1.0, 1.0])
        # v for circular orbit: a = G m / (2r)^2, v = sqrt(a r).
        v = np.sqrt(1.0 / 4.0)
        vel = np.array([[0.0, v, 0.0], [0.0, -v, 0.0]])
        p, w = pos.copy(), vel.copy()
        for _ in range(200):
            p, w = leapfrog_step(p, w, mass, dt=0.05, theta=0.0, eps=1e-6)
        r = np.linalg.norm(p[0] - p[1])
        assert 1.0 < r < 3.0  # stays in a bounded orbit
