"""Tests for binned pair counts and the Landy–Szalay estimator."""

import numpy as np
import pytest

from repro.baselines import brute
from repro.problems import (
    binned_pair_counts, landy_szalay, pair_count, two_point_correlation,
)


@pytest.fixture
def rng():
    return np.random.default_rng(30)


class TestPairCount:
    def test_self_matches_two_point(self, rng):
        X = rng.normal(size=(150, 3))
        assert pair_count(X, h=0.7) == two_point_correlation(X, 0.7)

    def test_cross_matches_brute(self, rng):
        A = rng.normal(size=(80, 3))
        B = rng.normal(size=(90, 3))
        d2 = ((A[:, None, :] - B[None, :, :]) ** 2).sum(-1)
        assert pair_count(A, B, h=1.0) == float((d2 < 1.0).sum())

    def test_bad_h(self, rng):
        with pytest.raises(ValueError):
            pair_count(rng.normal(size=(10, 2)), h=0.0)


class TestBinnedCounts:
    def test_bins_partition_cumulative(self, rng):
        X = rng.normal(size=(120, 3))
        edges = np.array([0.0, 0.5, 1.0, 2.0])
        per_bin = binned_pair_counts(X, None, edges)
        assert per_bin.sum() == pair_count(X, h=2.0)
        assert (per_bin >= 0).all()

    def test_counts_match_brute_histogram(self, rng):
        X = rng.normal(size=(100, 3))
        edges = np.array([0.2, 0.6, 1.2])
        per_bin = binned_pair_counts(X, None, edges)
        d2 = ((X[:, None, :] - X[None, :, :]) ** 2).sum(-1)
        d = np.sqrt(d2)
        np.fill_diagonal(d, np.inf)
        expected = np.histogram(d[np.isfinite(d)], bins=edges)[0]
        assert np.array_equal(per_bin, expected)

    def test_bad_edges(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            binned_pair_counts(X, None, [1.0])
        with pytest.raises(ValueError):
            binned_pair_counts(X, None, [1.0, 0.5])
        with pytest.raises(ValueError):
            binned_pair_counts(X, None, [-1.0, 1.0])


class TestLandySzalay:
    def test_unclustered_xi_near_zero(self, rng):
        box = lambda n: rng.uniform(0, 10, size=(n, 3))  # noqa: E731
        res = landy_szalay(box(500), box(1000), edges=[0.5, 1.0, 1.5])
        assert np.nanmax(np.abs(res.xi)) < 0.5

    def test_clustered_xi_positive_at_small_r(self, rng):
        box = lambda n: rng.uniform(0, 10, size=(n, 3))  # noqa: E731
        centers = box(25)
        clustered = centers[rng.integers(0, 25, 500)] + rng.normal(
            scale=0.15, size=(500, 3))
        res = landy_szalay(clustered, box(1000), edges=[0.3, 0.8, 2.0])
        assert res.xi[0] > 1.0            # strong small-scale clustering
        assert res.xi[0] > res.xi[-1]     # decreasing with separation

    def test_result_fields(self, rng):
        box = lambda n: rng.uniform(0, 5, size=(n, 2))  # noqa: E731
        res = landy_szalay(box(100), box(150), edges=[0.2, 0.5, 1.0])
        assert len(res.xi) == 2
        assert np.allclose(res.centers, [0.35, 0.75])
        assert res.dd.sum() >= 0 and res.rr.sum() > 0

    def test_tiny_catalog_rejected(self, rng):
        with pytest.raises(ValueError):
            landy_szalay(rng.normal(size=(1, 2)), rng.normal(size=(10, 2)),
                         edges=[0.1, 1.0])
