"""Tests for DBSCAN over the range-search substrate."""

import numpy as np
import pytest

from repro.problems import dbscan
from repro.problems.dbscan import NOISE


@pytest.fixture
def rng():
    return np.random.default_rng(34)


@pytest.fixture
def two_moons_ish(rng):
    """Two dense blobs plus scattered noise."""
    a = rng.normal((-5, 0), 0.4, (100, 2))
    b = rng.normal((5, 0), 0.4, (100, 2))
    noise = rng.uniform(-15, 15, (20, 2))
    return np.concatenate([a, b, noise])


class TestDBSCAN:
    def test_two_clusters_found(self, two_moons_ish):
        res = dbscan(two_moons_ish, eps=1.0, min_samples=5)
        assert res.n_clusters == 2

    def test_blob_members_share_label(self, two_moons_ish):
        res = dbscan(two_moons_ish, eps=1.0, min_samples=5)
        assert len(np.unique(res.labels[:100])) == 1
        assert len(np.unique(res.labels[100:200])) == 1
        assert res.labels[0] != res.labels[150]

    def test_isolated_points_are_noise(self, rng):
        blob = rng.normal(size=(80, 2)) * 0.3
        lone = np.array([[50.0, 50.0], [-60.0, 10.0]])
        res = dbscan(np.concatenate([blob, lone]), eps=1.0, min_samples=4)
        assert res.labels[-1] == NOISE and res.labels[-2] == NOISE

    def test_core_mask(self, rng):
        X = rng.normal(size=(100, 2)) * 0.2
        res = dbscan(X, eps=0.5, min_samples=3)
        assert res.core_mask.sum() > 80       # dense blob: almost all core

    def test_cluster_sizes(self, two_moons_ish):
        res = dbscan(two_moons_ish, eps=1.0, min_samples=5)
        sizes = res.cluster_sizes()
        assert sizes.sum() + (res.labels == NOISE).sum() == len(two_moons_ish)
        assert (sizes >= 100).all()

    def test_min_samples_one_no_noise(self, rng):
        X = rng.normal(size=(50, 2))
        res = dbscan(X, eps=0.5, min_samples=1)
        assert (res.labels != NOISE).all()

    def test_all_noise_when_eps_tiny(self, rng):
        X = rng.normal(size=(50, 2))
        res = dbscan(X, eps=1e-9, min_samples=3)
        assert res.n_clusters == 0
        assert (res.labels == NOISE).all()
        assert len(res.cluster_sizes()) == 0

    def test_border_points_attach_to_cluster(self):
        # A chain of points 0.05 apart: interior points see 2 neighbours
        # (core at min_samples=3), the endpoints see only 1 (border) yet
        # attach to the chain's cluster.
        X = np.stack([np.arange(21) * 0.05, np.zeros(21)], axis=1)
        res = dbscan(X, eps=0.06, min_samples=3)
        assert res.n_clusters == 1
        assert (res.labels == 0).all()
        assert not res.core_mask[0] and not res.core_mask[-1]
        assert res.core_mask[1:-1].all()

    def test_validation(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            dbscan(X, eps=0.0)
        with pytest.raises(ValueError):
            dbscan(X, eps=1.0, min_samples=0)
