"""Tests for EM over Portal sub-problems."""

import numpy as np
import pytest

from repro.dsl import Storage
from repro.problems import GaussianMixtureEM, em_fit


@pytest.fixture
def rng():
    return np.random.default_rng(21)


class TestFit:
    def test_log_likelihood_monotone(self, clustered_2d):
        X, _ = clustered_2d
        gmm = em_fit(X, 2, max_iter=25)
        lls = gmm.log_likelihoods_
        assert all(b >= a - 1e-6 * abs(a) for a, b in zip(lls, lls[1:]))

    def test_recovers_two_clusters(self, clustered_2d):
        X, y = clustered_2d
        gmm = em_fit(X, 2, max_iter=40)
        labels = gmm.predict(X)
        acc = max(np.mean(labels == y), np.mean(labels == 1 - y))
        assert acc > 0.95

    def test_means_near_truth(self, clustered_2d):
        X, _ = clustered_2d
        gmm = em_fit(X, 2, max_iter=40)
        xs = np.sort(gmm.means_[:, 0])
        assert xs[0] == pytest.approx(-4.0, abs=0.8)
        assert xs[1] == pytest.approx(4.0, abs=0.8)

    def test_weights_sum_to_one(self, clustered_2d):
        X, _ = clustered_2d
        gmm = em_fit(X, 3, max_iter=10)
        assert gmm.weights_.sum() == pytest.approx(1.0)

    def test_responsibilities_normalised(self, clustered_2d):
        X, _ = clustered_2d
        gmm = em_fit(X, 2, max_iter=10)
        resp = gmm.predict_proba(X)
        assert resp.shape == (len(X), 2)
        assert np.allclose(resp.sum(axis=1), 1.0)

    def test_accepts_storage(self, clustered_2d):
        X, _ = clustered_2d
        gmm = em_fit(Storage(X), 2, max_iter=5)
        assert gmm.n_iter_ >= 1

    def test_bad_k_rejected(self, clustered_2d):
        X, _ = clustered_2d
        with pytest.raises(ValueError):
            GaussianMixtureEM(n_components=0).fit(X)
        with pytest.raises(ValueError):
            GaussianMixtureEM(n_components=len(X) + 1).fit(X)

    def test_log_likelihood_matches_direct(self, clustered_2d):
        """The Portal Σ log Σ sub-problem equals a direct computation."""
        X, _ = clustered_2d
        gmm = em_fit(X, 2, max_iter=5)
        from repro.problems.em import _log_gaussian

        direct = np.zeros(len(X))
        total = np.zeros(len(X))
        for k in range(2):
            total += gmm.weights_[k] * np.exp(
                _log_gaussian(X, gmm.means_[k], gmm.covariances_[k])
            )
        expected = float(np.log(total).sum())
        assert gmm.log_likelihood(X) == pytest.approx(expected, rel=1e-10)

    def test_convergence_stops_early(self, clustered_2d):
        X, _ = clustered_2d
        gmm = GaussianMixtureEM(n_components=2, max_iter=200, tol=1e-4).fit(X)
        assert gmm.n_iter_ < 200
