"""Tests for the Euclidean minimum spanning tree (dual-tree Borůvka)."""

import numpy as np
import pytest
from scipy.sparse.csgraph import minimum_spanning_tree
from scipy.spatial.distance import pdist, squareform

from repro.problems import emst


def scipy_mst_weight(X) -> float:
    return float(minimum_spanning_tree(squareform(pdist(X))).sum())


@pytest.fixture
def rng():
    return np.random.default_rng(20)


class TestEMST:
    def test_weight_matches_scipy(self, rng):
        X = rng.normal(size=(200, 3))
        res = emst(X)
        assert res.total_weight == pytest.approx(scipy_mst_weight(X), rel=1e-10)

    def test_edge_count(self, rng):
        X = rng.normal(size=(120, 2))
        res = emst(X)
        assert res.edges.shape == (119, 2)
        assert len(res.weights) == 119

    def test_spanning_connected(self, rng):
        import networkx as nx

        X = rng.normal(size=(100, 3))
        res = emst(X)
        g = nx.Graph()
        g.add_nodes_from(range(100))
        g.add_edges_from(map(tuple, res.edges))
        assert nx.is_connected(g)
        assert g.number_of_edges() == 99

    def test_weights_sorted(self, rng):
        res = emst(rng.normal(size=(80, 2)))
        assert np.all(np.diff(res.weights) >= -1e-12)

    def test_clustered_data(self, rng):
        A = rng.normal(size=(60, 2))
        B = rng.normal(size=(60, 2)) + 20.0
        X = np.concatenate([A, B])
        res = emst(X)
        assert res.total_weight == pytest.approx(scipy_mst_weight(X), rel=1e-10)
        # Exactly one long bridge edge between the clusters.
        bridge = sum(1 for (a, b) in res.edges if (a < 60) != (b < 60))
        assert bridge == 1

    def test_high_dim(self, rng):
        X = rng.normal(size=(80, 10))
        res = emst(X)
        assert res.total_weight == pytest.approx(scipy_mst_weight(X), rel=1e-10)

    def test_two_points(self):
        X = np.array([[0.0, 0.0], [3.0, 4.0]])
        res = emst(X)
        assert res.total_weight == pytest.approx(5.0)
        assert res.rounds == 1

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            emst(np.array([[1.0, 2.0]]))

    def test_duplicate_points(self, rng):
        # scipy.csgraph treats explicit zero distances as missing edges, so
        # validate against networkx, which handles zero-weight edges.
        import networkx as nx

        base = rng.normal(size=(30, 2))
        X = np.concatenate([base, base[:10]])
        res = emst(X)
        g = nx.Graph()
        D = squareform(pdist(X))
        n = len(X)
        g.add_weighted_edges_from(
            (i, j, D[i, j]) for i in range(n) for j in range(i + 1, n)
        )
        expected = sum(d["weight"] for _, _, d in
                       nx.minimum_spanning_edges(g, data=True))
        assert res.total_weight == pytest.approx(expected, abs=1e-9)

    def test_stats_collected(self, rng):
        res = emst(rng.normal(size=(100, 2)))
        assert res.stats.base_cases > 0
        assert res.rounds >= 1
