"""Tests for Hausdorff distance against scipy's reference implementation."""

import numpy as np
import pytest
from scipy.spatial.distance import directed_hausdorff as scipy_dh

from repro.problems import directed_hausdorff, hausdorff


@pytest.fixture
def rng():
    return np.random.default_rng(18)


class TestDirected:
    def test_matches_scipy(self, rng):
        A = rng.normal(size=(150, 3))
        B = rng.normal(size=(180, 3))
        got = directed_hausdorff(A, B, fastmath=False)
        assert got == pytest.approx(scipy_dh(A, B)[0], rel=1e-12)

    def test_not_symmetric_in_general(self, rng):
        A = rng.normal(size=(50, 2))
        B = np.concatenate([A, rng.normal(size=(50, 2)) + 10.0])
        # A ⊆ B so h(A,B)=0 but h(B,A) is large.
        assert directed_hausdorff(A, B, fastmath=False) == pytest.approx(0.0)
        assert directed_hausdorff(B, A, fastmath=False) > 1.0

    def test_identical_sets_zero(self, rng):
        A = rng.normal(size=(60, 3))
        assert directed_hausdorff(A, A.copy(), fastmath=False) == pytest.approx(0.0)

    def test_high_dim(self, rng):
        A = rng.normal(size=(60, 10))
        B = rng.normal(size=(70, 10))
        got = directed_hausdorff(A, B, fastmath=False)
        assert got == pytest.approx(scipy_dh(A, B)[0], rel=1e-12)


class TestSymmetric:
    def test_max_of_directed(self, rng):
        A = rng.normal(size=(80, 3))
        B = rng.normal(size=(90, 3))
        expected = max(scipy_dh(A, B)[0], scipy_dh(B, A)[0])
        assert hausdorff(A, B, fastmath=False) == pytest.approx(expected)

    def test_symmetric(self, rng):
        A = rng.normal(size=(40, 2))
        B = rng.normal(size=(45, 2))
        assert hausdorff(A, B, fastmath=False) == pytest.approx(
            hausdorff(B, A, fastmath=False))
