"""Tests for kernel density estimation: accuracy under the τ knob."""

import math

import numpy as np
import pytest

from repro.baselines import brute
from repro.problems import kde


@pytest.fixture
def rng():
    return np.random.default_rng(16)


class TestCorrectness:
    def test_tau_zero_is_exact(self, small_qr):
        Q, R = small_qr
        out = kde(Q, R, bandwidth=1.0, tau=0.0, fastmath=False)
        assert np.allclose(out, brute.brute_kde(Q, R, 1.0))

    def test_error_bounded_by_tau_times_n(self, small_qr):
        Q, R = small_qr
        tau = 1e-3
        out = kde(Q, R, bandwidth=1.0, tau=tau, fastmath=False)
        exact = brute.brute_kde(Q, R, 1.0)
        assert np.abs(out - exact).max() <= tau * len(R) + 1e-9

    def test_larger_tau_less_exact_work(self, rng):
        X = rng.uniform(0, 10, size=(800, 3))
        from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage

        stats = {}
        for tau in (1e-6, 1e-2):
            e = PortalExpr()
            s = Storage(X)
            e.addLayer(PortalOp.FORALL, s)
            e.addLayer(PortalOp.SUM, s, PortalFunc.GAUSSIAN, bandwidth=0.5)
            e.execute(tau=tau, leaf_size=16, exclude_self=False)
            stats[tau] = e.program.stats
        assert stats[1e-2].base_case_pairs < stats[1e-6].base_case_pairs
        assert stats[1e-6].approximated > 0

    def test_weighted(self, small_qr):
        Q, R = small_qr
        w = np.random.default_rng(0).uniform(0.5, 2.0, len(R))
        out = kde(Q, R, bandwidth=1.0, tau=0.0, weights=w, fastmath=False)
        assert np.allclose(out, brute.brute_kde(Q, R, 1.0, weights=w))

    def test_normalized_integrates_sensibly(self, rng):
        X = rng.normal(size=(500, 2))
        dens = kde(X, bandwidth=0.5, tau=0.0, normalize=True, fastmath=False)
        # Density should be positive and of plausible magnitude for N(0, I).
        assert (dens > 0).all()
        peak = 1.0 / (2 * math.pi)  # true density at origin ~0.159
        assert dens.max() < 3 * peak

    def test_high_dim_row_major(self, small_highdim):
        Q, R = small_highdim
        out = kde(Q, R, bandwidth=2.0, tau=0.0, fastmath=False)
        assert np.allclose(out, brute.brute_kde(Q, R, 2.0))

    def test_self_density_includes_self(self, rng):
        X = rng.normal(size=(100, 2))
        out = kde(X, bandwidth=1.0, tau=0.0, fastmath=False)
        # exclude_self defaults to False for KDE: each point contributes
        # K(0)=1 to itself.
        assert (out >= 1.0 - 1e-9).all()
