"""Tests for k-means over Portal assignment steps."""

import numpy as np
import pytest

from repro.problems import kmeans


@pytest.fixture
def rng():
    return np.random.default_rng(39)


@pytest.fixture
def blobs(rng):
    X = np.concatenate([
        rng.normal((-5, 0), 0.5, (100, 2)),
        rng.normal((5, 0), 0.5, (100, 2)),
        rng.normal((0, 6), 0.5, (100, 2)),
    ])
    return X


class TestKMeans:
    def test_recovers_centers(self, blobs):
        res = kmeans(blobs, 3, seed=1)
        targets = np.array([[-5, 0], [5, 0], [0, 6]], dtype=float)
        for t in targets:
            assert np.linalg.norm(res.centroids - t, axis=1).min() < 0.5

    def test_inertia_monotone(self, blobs):
        res = kmeans(blobs, 3, seed=1)
        h = res.inertia_history
        assert all(b <= a + 1e-9 for a, b in zip(h, h[1:]))

    def test_labels_partition(self, blobs):
        res = kmeans(blobs, 3, seed=1)
        assert res.labels.shape == (300,)
        assert set(np.unique(res.labels)) <= {0, 1, 2}

    def test_k1_centroid_is_mean(self, rng):
        X = rng.normal(size=(50, 3))
        res = kmeans(X, 1)
        assert np.allclose(res.centroids[0], X.mean(axis=0))

    def test_k_equals_n(self, rng):
        X = rng.normal(size=(8, 2))
        res = kmeans(X, 8, seed=0)
        assert res.inertia == pytest.approx(0.0, abs=1e-12)

    def test_converges_quickly_on_separated_blobs(self, blobs):
        res = kmeans(blobs, 3, seed=1, max_iter=100)
        assert res.iterations < 20

    def test_bad_k(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            kmeans(X, 0)
        with pytest.raises(ValueError):
            kmeans(X, 11)

    def test_deterministic_given_seed(self, blobs):
        a = kmeans(blobs, 3, seed=7)
        b = kmeans(blobs, 3, seed=7)
        assert np.array_equal(a.labels, b.labels)
