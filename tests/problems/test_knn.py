"""Tests for k-nearest neighbors against the brute-force reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines import brute
from repro.problems import knn


@pytest.fixture
def rng():
    return np.random.default_rng(15)


class TestCorrectness:
    def test_k1_distances_and_indices(self, small_qr):
        Q, R = small_qr
        d, i = knn(Q, R, k=1, fastmath=False)
        db, ib = brute.brute_knn(Q, R, k=1)
        assert np.allclose(d, db)
        assert np.array_equal(i, ib)

    def test_k5(self, small_qr):
        Q, R = small_qr
        d, i = knn(Q, R, k=5, fastmath=False)
        db, ib = brute.brute_knn(Q, R, k=5)
        assert np.allclose(d, db)

    def test_high_dimensional(self, small_highdim):
        Q, R = small_highdim
        d, _ = knn(Q, R, k=3, fastmath=False)
        db, _ = brute.brute_knn(Q, R, k=3)
        assert np.allclose(d, db)

    def test_self_query_excludes_self(self, rng):
        X = rng.normal(size=(100, 3))
        d, i = knn(X, k=1, fastmath=False)
        assert np.all(i != np.arange(100))
        db, ib = brute.brute_knn(X, X, k=1, exclude_self=True)
        assert np.allclose(d, db)

    def test_fastmath_error_small(self, small_qr):
        Q, R = small_qr
        d_fast, _ = knn(Q, R, k=1, fastmath=True)
        db, _ = brute.brute_knn(Q, R, k=1)
        assert np.allclose(d_fast, db, rtol=1e-4)

    def test_sorted_output(self, small_qr):
        Q, R = small_qr
        d, _ = knn(Q, R, k=4, fastmath=False)
        assert np.all(np.diff(d, axis=1) >= -1e-12)

    def test_ball_tree(self, small_qr):
        Q, R = small_qr
        d, _ = knn(Q, R, k=2, tree="ball", fastmath=False)
        db, _ = brute.brute_knn(Q, R, k=2)
        assert np.allclose(d, db)

    def test_k_equals_n(self, rng):
        Q = rng.normal(size=(10, 2))
        R = rng.normal(size=(6, 2))
        d, _ = knn(Q, R, k=6, fastmath=False)
        db, _ = brute.brute_knn(Q, R, k=6)
        assert np.allclose(d, db)

    def test_duplicate_points(self, rng):
        R = np.repeat(rng.normal(size=(5, 2)), 4, axis=0)
        Q = rng.normal(size=(8, 2))
        d, _ = knn(Q, R, k=3, fastmath=False)
        db, _ = brute.brute_knn(Q, R, k=3)
        assert np.allclose(d, db)

    @settings(max_examples=20, deadline=None)
    @given(
        pts=hnp.arrays(
            np.float64, st.tuples(st.integers(5, 60), st.integers(1, 6)),
            elements=st.floats(-100, 100, allow_nan=False, width=64),
        ),
        k=st.integers(1, 4),
    )
    def test_property_vs_brute(self, pts, k):
        n = pts.shape[0]
        Q, R = pts[: n // 2 + 1], pts
        d, _ = knn(Q, R, k=k, fastmath=False)
        db, _ = brute.brute_knn(Q, R, k=k)
        # The generated base case uses the GEMM norm-expansion, whose
        # cancellation error near zero distance is ~|x|·√ε — the same
        # trade-off expert code makes.
        assert np.allclose(d, db, atol=1e-4, rtol=1e-7)
