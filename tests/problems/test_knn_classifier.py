"""Tests for the k-NN classifier/regressor."""

import numpy as np
import pytest

from repro.problems.knn_classifier import KNNClassifier, knn_regress


@pytest.fixture
def rng():
    return np.random.default_rng(40)


@pytest.fixture
def two_class(rng):
    X = np.concatenate([rng.normal(-3, 1, (120, 3)),
                        rng.normal(3, 1, (120, 3))])
    y = np.array(["neg"] * 120 + ["pos"] * 120)
    return X, y


class TestClassifier:
    def test_separable_accuracy(self, two_class):
        X, y = two_class
        clf = KNNClassifier(k=5).fit(X, y)
        assert clf.score(X, y) > 0.97

    def test_string_labels_returned(self, two_class):
        X, y = two_class
        clf = KNNClassifier(k=3).fit(X, y)
        pred = clf.predict(np.array([[-3.0, 0, 0], [3.0, 0, 0]]))
        assert pred[0] == "neg" and pred[1] == "pos"

    def test_weighted_breaks_ties_by_distance(self):
        # Two class-0 points far away, one class-1 point very near: with
        # k=3 unweighted votes class 0 wins; weighted votes pick class 1.
        X = np.array([[0.0, 0.0], [10.0, 0.0], [10.0, 0.2]])
        y = np.array([1, 0, 0])
        probe = np.array([[0.5, 0.0]])
        plain = KNNClassifier(k=3, weighted=False).fit(X, y).predict(probe)
        weighted = KNNClassifier(k=3, weighted=True).fit(X, y).predict(probe)
        assert plain[0] == 0 and weighted[0] == 1

    def test_k_validation(self, two_class):
        X, y = two_class
        with pytest.raises(ValueError):
            KNNClassifier(k=0)
        with pytest.raises(ValueError):
            KNNClassifier(k=len(X) + 1).fit(X, y)

    def test_unfitted(self, rng):
        with pytest.raises(ValueError, match="not fitted"):
            KNNClassifier().predict(rng.normal(size=(3, 2)))

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            KNNClassifier().fit(rng.normal(size=(5, 2)), [0, 1])

    def test_k1_copies_nearest_label(self, two_class):
        X, y = two_class
        clf = KNNClassifier(k=1).fit(X, y)
        assert clf.score(X, y) == 1.0  # self excluded? no: test vs train
        # (test points equal training points: the nearest neighbour of a
        # training point queried against the training set is itself)


class TestRegression:
    def test_recovers_smooth_function(self, rng):
        X = rng.uniform(-3, 3, (400, 1))
        y = np.sin(X[:, 0])
        Xt = rng.uniform(-2.5, 2.5, (50, 1))
        pred = knn_regress(X, y, Xt, k=8)
        assert np.abs(pred - np.sin(Xt[:, 0])).max() < 0.15

    def test_unweighted_is_mean(self):
        X = np.array([[0.0], [1.0], [2.0], [100.0]])
        y = np.array([1.0, 2.0, 3.0, 50.0])
        pred = knn_regress(X, y, np.array([[1.0]]), k=3, weighted=False)
        assert pred[0] == pytest.approx(2.0)

    def test_length_validation(self, rng):
        with pytest.raises(ValueError):
            knn_regress(rng.normal(size=(5, 2)), np.ones(4),
                        rng.normal(size=(2, 2)))
