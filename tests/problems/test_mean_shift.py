"""Tests for mean-shift clustering (composition of KDE Portal programs)."""

import numpy as np
import pytest

from repro.problems import mean_shift

pytestmark = pytest.mark.slow


@pytest.fixture
def rng():
    return np.random.default_rng(33)


@pytest.fixture
def three_blobs(rng):
    X = np.concatenate([
        rng.normal((-4, 0), 0.4, (120, 2)),
        rng.normal((4, 0), 0.4, (120, 2)),
        rng.normal((0, 6), 0.4, (80, 2)),
    ])
    truth = np.repeat([0, 1, 2], [120, 120, 80])
    return X, truth


class TestMeanShift:
    def test_finds_three_modes(self, three_blobs):
        X, _ = three_blobs
        res = mean_shift(X, bandwidth=0.7)
        assert len(res.modes) == 3

    def test_modes_near_centers(self, three_blobs):
        X, _ = three_blobs
        res = mean_shift(X, bandwidth=0.7)
        centers = np.array([[-4, 0], [4, 0], [0, 6]], dtype=float)
        for c in centers:
            assert np.linalg.norm(res.modes - c, axis=1).min() < 0.5

    def test_clusters_match_truth(self, three_blobs):
        X, truth = three_blobs
        res = mean_shift(X, bandwidth=0.7)
        # Every true cluster maps to exactly one label.
        for t in np.unique(truth):
            labels = res.labels[truth == t]
            assert len(np.unique(labels)) == 1

    def test_single_blob_single_mode(self, rng):
        X = rng.normal(size=(150, 3)) * 0.3
        res = mean_shift(X, bandwidth=1.0)
        assert len(res.modes) == 1
        assert np.linalg.norm(res.modes[0]) < 0.3

    def test_converges(self, three_blobs):
        X, _ = three_blobs
        res = mean_shift(X, bandwidth=0.7, max_iter=100)
        assert res.iterations < 100

    def test_shifted_positions_at_modes(self, three_blobs):
        X, _ = three_blobs
        res = mean_shift(X, bandwidth=0.7)
        d = np.linalg.norm(res.shifted - res.modes[res.labels], axis=1)
        assert d.max() < 0.7 / 2

    def test_bad_bandwidth(self, rng):
        with pytest.raises(ValueError):
            mean_shift(rng.normal(size=(10, 2)), bandwidth=0.0)

    def test_tau_knob_consistency(self, three_blobs):
        X, _ = three_blobs
        exact = mean_shift(X, bandwidth=0.7, tau=0.0)
        approx = mean_shift(X, bandwidth=0.7, tau=1e-4)
        assert len(exact.modes) == len(approx.modes)
        assert np.array_equal(exact.labels, approx.labels)
