"""Tests for the naive Bayes classifier built on per-class Mahalanobis
Portal programs."""

import numpy as np
import pytest

from repro.baselines import MlpackLikeNBC
from repro.problems import NaiveBayesClassifier, naive_bayes_fit


@pytest.fixture
def rng():
    return np.random.default_rng(22)


@pytest.fixture
def three_class(rng):
    X = np.concatenate([
        rng.normal((-5, 0), 1.0, size=(100, 2)),
        rng.normal((5, 0), 1.0, size=(100, 2)),
        rng.normal((0, 6), 1.0, size=(100, 2)),
    ])
    y = np.repeat([0, 1, 2], 100)
    return X, y


class TestClassifier:
    def test_separable_accuracy(self, three_class):
        X, y = three_class
        nbc = naive_bayes_fit(X, y)
        assert nbc.score(X, y) > 0.97

    def test_agrees_with_reference(self, three_class):
        X, y = three_class
        ours = naive_bayes_fit(X, y).predict(X)
        ref = MlpackLikeNBC().fit(X, y).predict(X)
        assert np.mean(ours == ref) > 0.99

    def test_priors_affect_decision(self, rng):
        # Heavily imbalanced overlapping classes: prior should tip ties.
        X = np.concatenate([rng.normal(0, 1, (500, 2)),
                            rng.normal(0.5, 1, (20, 2))])
        y = np.array([0] * 500 + [1] * 20)
        nbc = naive_bayes_fit(X, y)
        pred = nbc.predict(rng.normal(0.25, 0.2, (50, 2)))
        assert np.mean(pred == 0) > 0.8

    def test_decision_scores_shape(self, three_class):
        X, y = three_class
        nbc = naive_bayes_fit(X, y)
        scores = nbc.decision_scores(X[:10])
        assert scores.shape == (10, 3)

    def test_string_labels(self, rng):
        X = np.concatenate([rng.normal(-3, 1, (50, 2)),
                            rng.normal(3, 1, (50, 2))])
        y = np.array(["cat"] * 50 + ["dog"] * 50)
        nbc = naive_bayes_fit(X, y)
        pred = nbc.predict(np.array([[-3.0, 0.0], [3.0, 0.0]]))
        assert pred[0] == "cat" and pred[1] == "dog"

    def test_unfitted_rejected(self, rng):
        with pytest.raises(ValueError, match="not fitted"):
            NaiveBayesClassifier().predict(rng.normal(size=(3, 2)))

    def test_mismatched_xy_rejected(self, rng):
        with pytest.raises(ValueError):
            NaiveBayesClassifier().fit(rng.normal(size=(5, 2)), [0, 1])

    def test_tiny_class_rejected(self, rng):
        X = rng.normal(size=(5, 2))
        y = [0, 0, 0, 0, 1]
        with pytest.raises(ValueError, match="at least 2"):
            NaiveBayesClassifier().fit(X, y)
