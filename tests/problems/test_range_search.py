"""Tests for range search and range count."""

import numpy as np
import pytest

from repro.baselines import brute
from repro.problems import range_count, range_search


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestRangeSearch:
    def test_matches_brute(self, small_qr):
        Q, R = small_qr
        got = range_search(Q, R, h=0.8)
        expected = brute.brute_range_search(Q, R, 0.8)
        for g, e in zip(got, expected):
            assert np.array_equal(g, np.sort(e))

    def test_self_join_excludes_self(self, rng):
        X = rng.normal(size=(80, 3))
        got = range_search(X, h=0.9)
        for i, g in enumerate(got):
            assert i not in g

    def test_annulus(self, small_qr):
        Q, R = small_qr
        got = range_search(Q, R, h=1.2, h_min=0.6)
        d = np.sqrt(((Q[:, None, :] - R[None, :, :]) ** 2).sum(-1))
        for i, g in enumerate(got):
            expected = np.flatnonzero((d[i] >= 0.6) & (d[i] < 1.2))
            # Points exactly at h_min boundary belong to the outer search only.
            expected_strict = np.flatnonzero((d[i] < 1.2) & ~(d[i] < 0.6))
            assert np.array_equal(g, expected_strict)

    def test_empty_results(self, rng):
        Q = rng.normal(size=(20, 3))
        R = rng.normal(size=(20, 3)) + 100.0
        got = range_search(Q, R, h=0.5)
        assert all(len(g) == 0 for g in got)

    def test_bad_h_rejected(self, small_qr):
        Q, R = small_qr
        with pytest.raises(ValueError):
            range_search(Q, R, h=0.0)
        with pytest.raises(ValueError):
            range_search(Q, R, h=1.0, h_min=1.5)


class TestRangeCount:
    def test_matches_brute(self, small_qr):
        Q, R = small_qr
        got = range_count(Q, R, h=0.8)
        assert np.array_equal(got, brute.brute_range_count(Q, R, 0.8))

    def test_count_equals_search_length(self, small_qr):
        Q, R = small_qr
        counts = range_count(Q, R, h=0.7)
        lists = range_search(Q, R, h=0.7)
        assert np.array_equal(counts, [len(l) for l in lists])

    def test_self_join_count(self, rng):
        X = rng.normal(size=(70, 3))
        got = range_count(X, h=1.0)
        expected = brute.brute_range_count(X, X, 1.0, exclude_self=True)
        assert np.array_equal(got, expected)

    def test_all_inside_closed_form(self, rng):
        # Tiny spread, huge radius: every pair is inside; the traversal
        # should answer almost entirely through ComputeApprox.
        X = rng.normal(size=(200, 3)) * 0.01
        got = range_count(X, h=10.0)
        assert np.all(got == 199.0)
