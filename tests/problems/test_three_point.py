"""Tests for 3-point correlation (the m = 3 multi-tree instance)."""

import numpy as np
import pytest

from repro.problems import three_point_correlation


def brute_three_point(X, h):
    d2 = ((X[:, None, :] - X[None, :, :]) ** 2).sum(-1)
    m = (d2 < h * h).astype(float)
    np.fill_diagonal(m, 0.0)
    return float(np.einsum("ab,bc,ac->", m, m, m))


@pytest.fixture
def rng():
    return np.random.default_rng(27)


class TestThreePoint:
    def test_matches_brute(self, rng):
        X = rng.normal(size=(100, 3))
        assert three_point_correlation(X, 0.8) == brute_three_point(X, 0.8)

    def test_2d(self, rng):
        X = rng.normal(size=(80, 2))
        assert three_point_correlation(X, 0.5) == brute_three_point(X, 0.5)

    def test_high_dim(self, rng):
        X = rng.normal(size=(60, 8))
        assert three_point_correlation(X, 2.5) == brute_three_point(X, 2.5)

    def test_closed_form_inclusion_fires(self, rng):
        A = rng.normal(size=(50, 3)) * 0.05
        B = rng.normal(size=(50, 3)) * 0.05 + 10.0
        X = np.concatenate([A, B])
        got, stats = three_point_correlation(X, 1.0, return_stats=True)
        assert got == brute_three_point(X, 1.0)
        assert stats.approximated > 0          # all-inside node triples
        assert stats.pruned > 0                # cross-cluster triples

    def test_tiny_radius(self, rng):
        X = rng.normal(size=(50, 3))
        assert three_point_correlation(X, 1e-9) == 0.0

    def test_huge_radius_counts_all_distinct(self, rng):
        X = rng.normal(size=(30, 3))
        n = 30
        assert three_point_correlation(X, 1e6) == n * (n - 1) * (n - 2)

    def test_fewer_than_three_points(self, rng):
        assert three_point_correlation(rng.normal(size=(2, 3)), 1.0) == 0.0

    def test_bad_h(self, rng):
        with pytest.raises(ValueError):
            three_point_correlation(rng.normal(size=(10, 2)), -1.0)

    def test_ordered_vs_unordered_relation(self, rng):
        # Every unordered triangle contributes 3! = 6 ordered triples.
        X = rng.normal(size=(60, 3))
        got = three_point_correlation(X, 0.9)
        assert got % 6 == 0
