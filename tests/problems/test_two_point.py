"""Tests for 2-point correlation."""

import numpy as np
import pytest

from repro.baselines import brute
from repro.problems import two_point_correlation


@pytest.fixture
def rng():
    return np.random.default_rng(19)


class TestCounts:
    def test_matches_brute(self, rng):
        X = rng.normal(size=(300, 3))
        got = two_point_correlation(X, h=0.5)
        assert got == brute.brute_two_point(X, 0.5)

    def test_include_self_adds_n(self, rng):
        X = rng.normal(size=(100, 3))
        a = two_point_correlation(X, h=0.5)
        b = two_point_correlation(X, h=0.5, include_self=True)
        assert b == a + 100

    def test_unordered_halves(self, rng):
        X = rng.normal(size=(100, 3))
        ordered = two_point_correlation(X, h=0.7)
        unordered = two_point_correlation(X, h=0.7, ordered=False)
        assert unordered == ordered / 2

    def test_tiny_radius_zero(self, rng):
        X = rng.normal(size=(100, 3))
        assert two_point_correlation(X, h=1e-12) == 0.0

    def test_huge_radius_all_pairs(self, rng):
        X = rng.normal(size=(80, 3))
        assert two_point_correlation(X, h=1e6) == 80 * 79

    def test_clustered_data_exercises_both_prunes(self, rng):
        # Two distant blobs: cross-cluster pairs prune "all outside",
        # in-cluster pairs mostly resolve "all inside" in closed form.
        A = rng.normal(size=(150, 3)) * 0.1
        B = rng.normal(size=(150, 3)) * 0.1 + 50.0
        X = np.concatenate([A, B])
        got = two_point_correlation(X, h=5.0)
        assert got == brute.brute_two_point(X, 5.0)

    def test_high_dim(self, rng):
        X = rng.normal(size=(150, 8))
        assert two_point_correlation(X, h=2.0) == brute.brute_two_point(X, 2.0)

    def test_bad_h(self, rng):
        with pytest.raises(ValueError):
            two_point_correlation(rng.normal(size=(10, 2)), h=-1.0)
