"""Tests for the approximate-condition generator."""

import numpy as np
import pytest

from repro.dsl import CompileError, PortalFunc, PortalOp, Storage, Var
from repro.dsl.layer import Layer
from repro.rules.approx_gen import generate_approx


@pytest.fixture
def store():
    return Storage(np.random.default_rng(2).normal(size=(30, 3)), name="s")


def kde_layers(store, bandwidth=1.0):
    q, r = Var("q"), Var("r")
    ls = [
        Layer.build(PortalOp.FORALL, (q, store), {}),
        Layer.build(PortalOp.SUM, (r, store, PortalFunc.GAUSSIAN),
                    {"bandwidth": bandwidth}),
    ]
    ls[-1].resolve_kernel(q)
    return ls, ls[-1].metric_kernel


class TestBandCriterion:
    def test_band_rule(self, store):
        ls, k = kde_layers(store)
        rule = generate_approx(ls, k, tau=0.05)
        assert rule.kind == "approx" and rule.criterion == "band"
        assert rule.tau == 0.05
        assert "τ" in rule.description

    def test_negative_tau_rejected(self, store):
        ls, k = kde_layers(store)
        with pytest.raises(CompileError):
            generate_approx(ls, k, tau=-1.0)

    def test_non_arithmetic_inner_rejected(self, store):
        q, r = Var("q"), Var("r")
        ls = [
            Layer.build(PortalOp.FORALL, (q, store), {}),
            Layer.build(PortalOp.MIN, (r, store, PortalFunc.EUCLIDEAN), {}),
        ]
        ls[-1].resolve_kernel(q)
        with pytest.raises(CompileError, match="arithmetic"):
            generate_approx(ls, ls[-1].metric_kernel)

    def test_nonmonotone_kernel_rejected(self, store):
        from repro.dsl.expr import DistVar
        from repro.dsl.funcs import MetricKernel

        t = DistVar("t")
        k = MetricKernel("sqeuclidean", (t - 1.0) * (t - 1.0))
        ls, _ = kde_layers(store)
        with pytest.raises(CompileError, match="monotone"):
            generate_approx(ls, k)


class TestMacCriterion:
    def test_mac_rule(self, store):
        ls, k = kde_layers(store)
        rule = generate_approx(ls, k, criterion="mac", theta=0.4)
        assert rule.criterion == "mac" and rule.theta == 0.4
        assert "θ" in rule.description

    def test_bad_theta_rejected(self, store):
        ls, k = kde_layers(store)
        with pytest.raises(CompileError):
            generate_approx(ls, k, criterion="mac", theta=0.0)

    def test_unknown_criterion_rejected(self, store):
        ls, k = kde_layers(store)
        with pytest.raises(CompileError, match="criterion"):
            generate_approx(ls, k, criterion="magic")
