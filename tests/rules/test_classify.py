"""Tests for problem classification (paper section II-B): every Table-III
problem must land in its paper category."""

import numpy as np
import pytest

from repro.dsl import PortalFunc, PortalOp, Storage, Var, indicator, pow, sqrt
from repro.dsl.layer import Layer
from repro.rules.classify import classify


@pytest.fixture
def store():
    return Storage(np.random.default_rng(0).normal(size=(30, 3)), name="s")


def layers_of(store, *specs, params=None):
    out = []
    for op, func in specs:
        layer = Layer.build(op, (store, func) if func is not None else (store,),
                            params or {})
        out.append(layer)
    q, r = Var("q"), Var("r")
    out[0].var, out[-1].var = q, r
    out[-1].resolve_kernel(q)
    return out


def _kernel(layers):
    return layers[-1].metric_kernel


class TestTable3Categories:
    def test_knn_is_pruning(self, store):
        ls = layers_of(store, (PortalOp.FORALL, None),
                       (PortalOp.ARGMIN, PortalFunc.EUCLIDEAN))
        c = classify(ls, _kernel(ls))
        assert c.is_pruning and c.algorithm == "tree"

    def test_range_search_is_pruning(self, store):
        q, r = Var("q"), Var("r")
        ind = indicator(sqrt(pow(q - r, 2)) < 1.0)
        ls = [
            Layer.build(PortalOp.FORALL, (q, store), {}),
            Layer.build(PortalOp.UNIONARG, (r, store, ind), {}),
        ]
        ls[-1].resolve_kernel(q)
        c = classify(ls, _kernel(ls))
        assert c.is_pruning

    def test_hausdorff_is_pruning(self, store):
        ls = layers_of(store, (PortalOp.MAX, None),
                       (PortalOp.MIN, PortalFunc.EUCLIDEAN))
        assert classify(ls, _kernel(ls)).is_pruning

    def test_kde_is_approximation(self, store):
        ls = layers_of(store, (PortalOp.FORALL, None),
                       (PortalOp.SUM, PortalFunc.GAUSSIAN))
        c = classify(ls, _kernel(ls))
        assert c.is_approximation and c.algorithm == "tree"

    def test_two_point_is_pruning_via_kernel(self, store):
        q, r = Var("q"), Var("r")
        ind = indicator(sqrt(pow(q - r, 2)) < 0.5)
        ls = [
            Layer.build(PortalOp.SUM, (q, store), {}),
            Layer.build(PortalOp.SUM, (r, store, ind), {}),
        ]
        ls[-1].resolve_kernel(q)
        c = classify(ls, _kernel(ls))
        # Arithmetic operators but a comparative kernel -> pruning.
        assert c.is_pruning

    def test_estep_forall_forall_brute(self, store):
        ls = layers_of(store, (PortalOp.FORALL, None),
                       (PortalOp.FORALL, PortalFunc.GAUSSIAN))
        c = classify(ls, _kernel(ls))
        assert c.algorithm == "brute"

    def test_external_kernel_brute(self, store):
        fn = lambda Q, R: np.zeros((len(Q), len(R)))  # noqa: E731
        ls = layers_of(store, (PortalOp.FORALL, None), (PortalOp.SUM, fn))
        c = classify(ls, None)
        assert c.algorithm == "brute"
        assert c.is_approximation

    def test_reasons_populated(self, store):
        ls = layers_of(store, (PortalOp.FORALL, None),
                       (PortalOp.ARGMIN, PortalFunc.EUCLIDEAN))
        c = classify(ls, _kernel(ls))
        assert any("comparative operator" in r for r in c.reasons)
