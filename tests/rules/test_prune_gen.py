"""Tests for the prune-condition generator (paper section II-C)."""

import numpy as np
import pytest

from repro.dsl import PortalFunc, PortalOp, Storage, Var, indicator, pow, sqrt
from repro.dsl.layer import Layer
from repro.rules import build_rules
from repro.rules.prune_gen import generate_prune


@pytest.fixture
def store():
    return Storage(np.random.default_rng(1).normal(size=(40, 3)), name="s")


def make(store, outer_op, inner_op, func, k=None, params=None):
    inner_spec = (inner_op, k) if k else inner_op
    q, r = Var("q"), Var("r")
    ls = [
        Layer.build(outer_op, (q, store), {}),
        Layer.build(inner_spec, (r, store, func), params or {}),
    ]
    ls[-1].resolve_kernel(q)
    return ls, ls[-1].metric_kernel


class TestBoundRules:
    def test_argmin_bound_min(self, store):
        ls, k = make(store, PortalOp.FORALL, PortalOp.ARGMIN,
                     PortalFunc.EUCLIDEAN)
        rule = generate_prune(ls, k)
        assert rule.kind == "bound-min" and rule.k == 1

    def test_kargmin_carries_k(self, store):
        ls, k = make(store, PortalOp.FORALL, PortalOp.KARGMIN,
                     PortalFunc.EUCLIDEAN, k=5)
        rule = generate_prune(ls, k)
        assert rule.kind == "bound-min" and rule.k == 5
        assert "5th-best" in rule.description

    def test_argmax_bound_max(self, store):
        ls, k = make(store, PortalOp.FORALL, PortalOp.ARGMAX,
                     PortalFunc.EUCLIDEAN)
        assert generate_prune(ls, k).kind == "bound-max"

    def test_hausdorff_inner_min(self, store):
        ls, k = make(store, PortalOp.MAX, PortalOp.MIN, PortalFunc.EUCLIDEAN)
        assert generate_prune(ls, k).kind == "bound-min"


class TestIndicatorRules:
    def _indicator_layers(self, store, outer, inner, h=0.7):
        q, r = Var("q"), Var("r")
        ind = indicator(sqrt(pow(q - r, 2)) < h)
        ls = [
            Layer.build(outer, (q, store), {}),
            Layer.build(inner, (r, store, ind), {}),
        ]
        ls[-1].resolve_kernel(q)
        return ls, ls[-1].metric_kernel

    def test_two_point_count_product(self, store):
        ls, k = self._indicator_layers(store, PortalOp.SUM, PortalOp.SUM)
        rule = generate_prune(ls, k)
        assert rule.kind == "indicator"
        assert rule.inside_action == "count_product"
        assert rule.indicator_h == pytest.approx(0.49)

    def test_range_count_per_query(self, store):
        ls, k = self._indicator_layers(store, PortalOp.FORALL, PortalOp.SUM)
        assert generate_prune(ls, k).inside_action == "count_per_query"

    def test_range_search_append_all(self, store):
        ls, k = self._indicator_layers(store, PortalOp.FORALL,
                                       PortalOp.UNIONARG)
        assert generate_prune(ls, k).inside_action == "append_all"

    def test_union_no_indicator_no_rule(self, store):
        ls, k = make(store, PortalOp.FORALL, PortalOp.UNIONARG,
                     PortalFunc.EUCLIDEAN)
        assert generate_prune(ls, k).kind == "none"


class TestBuildRules:
    def test_routes_pruning(self, store):
        ls, k = make(store, PortalOp.FORALL, PortalOp.ARGMIN,
                     PortalFunc.EUCLIDEAN)
        cls, rule = build_rules(ls, k)
        assert cls.is_pruning and rule.prunes

    def test_routes_approx(self, store):
        ls, k = make(store, PortalOp.FORALL, PortalOp.SUM,
                     PortalFunc.GAUSSIAN, params={"bandwidth": 1.0})
        cls, rule = build_rules(ls, k, tau=0.01)
        assert cls.is_approximation and rule.approximates
        assert rule.tau == 0.01

    def test_brute_gets_none(self, store):
        ls, _ = make(store, PortalOp.FORALL, PortalOp.SUM,
                     lambda Q, R: np.zeros((len(Q), len(R))))
        cls, rule = build_rules(ls, None)
        assert rule.kind == "none"
