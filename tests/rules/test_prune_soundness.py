"""Property tests: generated prune/approximate conditions are *sound*.

Pruning is only correct if a pruned node pair can never contain a value
the reduction would keep, and an approximated pair's replacement stays
within the analytic band.  These properties are verified directly against
randomly generated point sets, independent of the traversal machinery.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.trees import build_kdtree

pytestmark = pytest.mark.slow


def clouds(max_n=40, d=3):
    return hnp.arrays(
        np.float64, st.tuples(st.integers(8, max_n), st.just(d)),
        elements=st.floats(-20, 20, allow_nan=False, width=64),
    )


@settings(max_examples=25, deadline=None)
@given(Q=clouds(), R=clouds())
def test_bound_min_prune_never_hides_a_winner(Q, R):
    """For every node pair the generated kNN prune discards, no point of
    the reference node improves any query point's current best."""
    e = PortalExpr()
    e.addLayer(PortalOp.FORALL, Storage(Q, name="q"))
    e.addLayer(PortalOp.ARGMIN, Storage(R, name="r"), PortalFunc.EUCLIDEAN)
    prog = e.compile(fastmath=False, leaf_size=4)
    prog.run()

    ns = prog.kernels.namespace
    qtree, rtree = prog.qtree, prog.rtree
    # With monotone-map deferral the accumulators hold *base* (squared)
    # distances.
    best = ns["best"]
    prune = ns["prune_or_approx"]

    for qi in qtree.leaves()[:6]:
        for ri in rtree.leaves()[:6]:
            if prune(int(qi), int(ri)) == 1:
                qs, qe = qtree.slice(int(qi))
                rs, re = rtree.slice(int(ri))
                d2 = (
                    (qtree.points[qs:qe, None, :] -
                     rtree.points[None, rs:re, :]) ** 2
                ).sum(-1)
                # No pair in the pruned product beats the node's bound.
                assert (d2.min(axis=1) >= best[qs:qe] - 1e-9).all()


@settings(max_examples=20, deadline=None)
@given(X=clouds(max_n=60))
def test_indicator_prune_partitions_exactly(X):
    """Range-count pruning: all-outside pairs contain no qualifying pair,
    all-inside pairs contain only qualifying pairs."""
    h = 3.0
    tree = build_kdtree(X, leaf_size=4)
    lo, hi = tree.lo, tree.hi
    h2 = h * h

    def node_min2(a, b):
        g = np.maximum(0.0, np.maximum(lo[b] - hi[a], lo[a] - hi[b]))
        return float(g @ g)

    def node_max2(a, b):
        s = np.maximum(0.0, np.maximum(hi[b] - lo[a], hi[a] - lo[b]))
        return float(s @ s)

    leaves = tree.leaves()
    for a in leaves[:5]:
        for b in leaves[:5]:
            sa, ea = tree.slice(int(a))
            sb, eb = tree.slice(int(b))
            d2 = ((tree.points[sa:ea, None, :] -
                   tree.points[None, sb:eb, :]) ** 2).sum(-1)
            if node_min2(a, b) >= h2:
                assert (d2 >= h2 - 1e-9).all()
            if node_max2(a, b) < h2:
                assert (d2 < h2 + 1e-9).all()


@settings(max_examples=15, deadline=None)
@given(X=clouds(max_n=50))
def test_kde_band_bounds_node_contributions(X):
    """The band condition's g-bounds bracket every actual kernel value in
    the node pair (the soundness behind the τ·N error bound)."""
    bw = 2.0
    c = -1.0 / (2.0 * bw * bw)
    tree = build_kdtree(X, leaf_size=4)
    lo, hi = tree.lo, tree.hi
    leaves = tree.leaves()
    for a in leaves[:4]:
        for b in leaves[:4]:
            g = np.maximum(0.0, np.maximum(lo[b] - hi[a], lo[a] - hi[b]))
            tmin = float(g @ g)
            s = np.maximum(0.0, np.maximum(hi[b] - lo[a], hi[a] - lo[b]))
            tmax = float(s @ s)
            k_hi, k_lo = np.exp(c * tmin), np.exp(c * tmax)
            sa, ea = tree.slice(int(a))
            sb, eb = tree.slice(int(b))
            d2 = ((tree.points[sa:ea, None, :] -
                   tree.points[None, sb:eb, :]) ** 2).sum(-1)
            kv = np.exp(c * d2)
            assert (kv <= k_hi + 1e-12).all()
            assert (kv >= k_lo - 1e-12).all()
