"""Serving robustness battery: admission control, cancellation, linger
timing (fake clock), cache races, and Storage mutation under a live
handle.

Execution is made deterministic with a *gated* service — a
:class:`PortalService` subclass whose batch execution blocks on a
``threading.Event`` — and an injected fake linger clock, so none of
these tests sleep for wall-clock margins.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.backend.cache import clear_caches
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.serve import (
    AdmissionConfig, PortalService, ServeError, ServiceOverloaded,
)

from tests.backend.test_differential import _data

SEED = 101


def knn_template(R, k=3):
    Q, _ = _data(SEED)
    e = PortalExpr("knn")
    e.addLayer(PortalOp.FORALL, Storage(Q[:1], name="query"))
    e.addLayer((PortalOp.KARGMIN, k), Storage(R, name="reference"),
               PortalFunc.EUCLIDEAN)
    return e


class GatedService(PortalService):
    """Batch execution blocks until ``gate`` is set (register's warm
    probe does not pass through here, so only real batches are gated)."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self.gate = threading.Event()

    def _execute_batch(self, handle, meta, points):
        assert self.gate.wait(30), "gate was never opened"
        return super()._execute_batch(handle, meta, points)


class FakeClock:
    """Injectable linger-timer factory: timers never fire on their own."""

    class _Timer:
        def __init__(self, delay, cb):
            self.delay = delay
            self.cb = cb
            self.cancelled = False

        def cancel(self):
            self.cancelled = True

    def __init__(self):
        self.timers = []

    def schedule(self, delay, cb):
        t = self._Timer(delay, cb)
        self.timers.append(t)
        return t

    def armed(self):
        return [t for t in self.timers if not t.cancelled]

    def fire(self):
        for t in self.armed():
            t.cancelled = True
            t.cb()


async def _settle(n=6):
    """Let pending callbacks/executor handoffs run for a few ticks."""
    for _ in range(n):
        await asyncio.sleep(0)


# -- load shedding ---------------------------------------------------------------

def test_queue_overflow_sheds_with_typed_error():
    _, R = _data(SEED)

    async def go():
        svc = GatedService()
        hid = await svc.register(
            knn_template(R),
            admission=AdmissionConfig(max_queue=5, batch_max=2,
                                      linger_us=60_000_000))
        try:
            # 2 admitted + flushed (blocked on the gate), 3 more queued
            tasks = [asyncio.ensure_future(
                svc.query(hid, R[i:i + 1])) for i in range(5)]
            await _settle()
            with pytest.raises(ServiceOverloaded) as ei:
                await svc.query(hid, R[5:6])
            err = ei.value
            assert err.handle == hid
            assert err.queued == 5 and err.requested == 1 and err.limit == 5
            assert svc.counters.get("serve.shed") == 1
            # shedding rejected the new work without harming admitted work
            svc.gate.set()
            results = await asyncio.gather(*tasks)
            assert all(np.asarray(r.indices).shape == (1, 3)
                       for r in results)
            assert svc.counters.get("serve.queue_peak") == 5
        finally:
            svc.gate.set()
            await svc.close()

    asyncio.run(go())


def test_multi_row_request_larger_than_queue_is_shed():
    _, R = _data(SEED)

    async def go():
        svc = PortalService()
        hid = await svc.register(
            knn_template(R), admission=AdmissionConfig(max_queue=3))
        try:
            with pytest.raises(ServiceOverloaded):
                await svc.query(hid, R[:4])
        finally:
            await svc.close()

    asyncio.run(go())


# -- cancellation ----------------------------------------------------------------

def test_client_cancellation_mid_batch_leaves_neighbors_answered():
    _, R = _data(SEED)

    async def go():
        svc = GatedService()
        hid = await svc.register(
            knn_template(R),
            admission=AdmissionConfig(batch_max=3, linger_us=60_000_000))
        try:
            # one full batch of three; it flushes and blocks on the gate
            tasks = [asyncio.ensure_future(
                svc.query(hid, R[i:i + 1])) for i in range(3)]
            await _settle()
            tasks[1].cancel()  # mid-batch: traversal already in flight
            svc.gate.set()
            done = await asyncio.gather(*tasks, return_exceptions=True)
            assert isinstance(done[1], asyncio.CancelledError)
            for i in (0, 2):
                assert np.asarray(done[i].indices).shape == (1, 3)
            assert svc.counters.get("serve.cancelled") == 1
            # the cancelled rows still ran inside the shared traversal
            assert svc.counters.get("serve.batch_queries") == 3
        finally:
            svc.gate.set()
            await svc.close()

    asyncio.run(go())


def test_cancellation_before_flush_drops_rows_from_the_batch():
    _, R = _data(SEED)
    clock = FakeClock()

    async def go():
        svc = GatedService(schedule=clock.schedule)
        hid = await svc.register(
            knn_template(R),
            admission=AdmissionConfig(batch_max=64, linger_us=60_000_000))
        try:
            # occupy the handle so the next batch lingers open
            blocker = asyncio.ensure_future(svc.query(hid, R[0:1]))
            await _settle()
            tasks = [asyncio.ensure_future(
                svc.query(hid, R[i:i + 1])) for i in range(1, 4)]
            await _settle()
            tasks[0].cancel()  # batch still open: row never stacked
            await _settle()
            svc.gate.set()
            done = await asyncio.gather(blocker, *tasks,
                                        return_exceptions=True)
            assert isinstance(done[1], asyncio.CancelledError)
            assert np.asarray(done[2].indices).shape == (1, 3)
            assert np.asarray(done[3].indices).shape == (1, 3)
            assert svc.counters.get("serve.cancelled") == 1
            # blocker batch carried 1 row, the lingered batch only 2
            assert svc.counters.get("serve.batch_queries") == 3
        finally:
            svc.gate.set()
            await svc.close()

    asyncio.run(go())


# -- linger timing (fake clock) --------------------------------------------------

def test_linger_timer_flushes_open_batch_with_fake_clock():
    _, R = _data(SEED)
    clock = FakeClock()

    async def go():
        svc = GatedService(schedule=clock.schedule)
        hid = await svc.register(
            knn_template(R),
            admission=AdmissionConfig(batch_max=64, linger_us=1_000_000))
        try:
            # batch A: idle handle, flushes same-tick, blocks on the gate
            a = asyncio.ensure_future(svc.query(hid, R[0:1]))
            await _settle()
            assert not clock.armed()  # idle-handle path never arms a timer
            # batch B opens while the handle is busy -> linger timer armed
            b = asyncio.ensure_future(svc.query(hid, R[1:2]))
            await _settle()
            assert len(clock.armed()) == 1
            assert svc._coalescer.pending_batches() == 1
            # company arriving while lingering joins, no second timer
            c = asyncio.ensure_future(svc.query(hid, R[2:3]))
            await _settle()
            assert len(clock.armed()) == 1
            assert svc._coalescer.pending_batches() == 1
            assert not b.done() and not c.done()
            # the fake clock fires: B+C flush and queue behind A
            clock.fire()
            await _settle()
            assert svc._coalescer.pending_batches() == 0
            svc.gate.set()
            ra, rb, rc = await asyncio.gather(a, b, c)
            for r in (ra, rb, rc):
                assert np.asarray(r.indices).shape == (1, 3)
            assert svc.counters.get("serve.batches") == 2
            assert svc.counters.get("serve.coalesced") == 2  # B+C
        finally:
            svc.gate.set()
            await svc.close()

    asyncio.run(go())


def test_capacity_freed_kick_outruns_the_linger_timer():
    """When the in-flight batch finishes, the open batch is kicked
    immediately — the (never-fired) fake timer shows the linger was not
    what flushed it."""
    _, R = _data(SEED)
    clock = FakeClock()

    async def go():
        svc = GatedService(schedule=clock.schedule)
        hid = await svc.register(
            knn_template(R),
            admission=AdmissionConfig(batch_max=64, linger_us=60_000_000))
        try:
            a = asyncio.ensure_future(svc.query(hid, R[0:1]))
            await _settle()
            b = asyncio.ensure_future(svc.query(hid, R[1:2]))
            await _settle()
            assert len(clock.armed()) == 1
            svc.gate.set()  # A completes -> B kicked without the timer
            ra, rb = await asyncio.gather(a, b)
            assert np.asarray(rb.indices).shape == (1, 3)
            assert not clock.armed()  # the kick cancelled the timer
            assert svc.counters.get("serve.batches") == 2
        finally:
            svc.gate.set()
            await svc.close()

    asyncio.run(go())


# -- cache races -----------------------------------------------------------------

def test_register_and_clear_caches_race():
    """clear_caches() from another thread while handles register and
    serve must never corrupt results — at worst it costs rebuilds."""
    _, R = _data(SEED)
    stop = threading.Event()

    def clearer():
        while not stop.is_set():
            clear_caches()

    t = threading.Thread(target=clearer)
    t.start()
    try:
        async def go():
            svc = PortalService()
            try:
                expect = None
                for round_ in range(5):
                    hid = await svc.register(knn_template(R))
                    res = await svc.query(hid, R[7:8])
                    idx = np.asarray(res.indices)
                    if expect is None:
                        expect = idx
                    assert np.array_equal(idx, expect)
                    await svc.unregister(hid)
            finally:
                await svc.close()

        asyncio.run(go())
    finally:
        stop.set()
        t.join()


# -- Storage mutation under a live handle ----------------------------------------

@pytest.mark.parametrize("executor", ["serial", "process"])
def test_storage_mutation_between_requests_is_picked_up(executor):
    """Mutating the registered reference Storage between requests must
    be visible to the next batch (refit/rebuilt tree, refreshed shm
    publication — never a stale read), including under the process
    executor where reference columns live in shared memory."""
    rng = np.random.default_rng(SEED)
    R = rng.normal(size=(40, 3))
    rs = Storage(R, name="reference")
    q = np.array([[25.0, 25.0, 25.0]])

    options = {}
    if executor == "process":
        options = dict(parallel=True, workers=2, min_tasks=4,
                       executor="process")

    Qp, _ = _data(SEED)
    tmpl = PortalExpr("knn")
    tmpl.addLayer(PortalOp.FORALL, Storage(Qp[:1], name="query"))
    tmpl.addLayer((PortalOp.KARGMIN, 2), rs, PortalFunc.EUCLIDEAN)

    async def go():
        svc = PortalService()
        try:
            hid = await svc.register(tmpl, options=options)
            before = await svc.query(hid, q)
            # far from every seeded point: baseline neighbors are seeded
            assert np.asarray(before.indices).max() < 40

            new_idx = rs.insert_batch(q + 0.01)  # right on top of the query
            after = await svc.query(hid, q)
            got = set(np.asarray(after.indices).ravel().tolist())
            assert int(new_idx[0]) in got, (
                f"stale read: inserted point {new_idx} missing from {got}")

            rs.delete_batch(new_idx)
            again = await svc.query(hid, q)
            assert np.array_equal(np.asarray(again.indices),
                                  np.asarray(before.indices))
            return svc.counters.as_dict()
        finally:
            await svc.close()

    counters = asyncio.run(go())
    # the mutations were absorbed by the incremental path, not rebuilds
    assert counters.get("cache.tree.refit", 0) >= 1


# -- lifecycle / misc ------------------------------------------------------------

def test_unknown_handle_and_bad_points_raise_serve_errors():
    _, R = _data(SEED)

    async def go():
        svc = PortalService()
        try:
            with pytest.raises(ServeError):
                await svc.query("nope", R[:1])
            hid = await svc.register(knn_template(R))
            with pytest.raises(ServeError):
                await svc.query(hid, np.zeros((1, 7)))  # wrong dim
            with pytest.raises(ServeError):
                await svc.register(knn_template(R), name=hid)  # dup name
        finally:
            await svc.close()

    asyncio.run(go())


def test_close_fails_open_batches_and_rejects_new_work():
    _, R = _data(SEED)
    clock = FakeClock()

    async def go():
        svc = GatedService(schedule=clock.schedule)
        hid = await svc.register(
            knn_template(R),
            admission=AdmissionConfig(batch_max=64, linger_us=60_000_000))
        a = asyncio.ensure_future(svc.query(hid, R[0:1]))
        await _settle()
        b = asyncio.ensure_future(svc.query(hid, R[1:2]))  # open batch
        await _settle()
        svc.gate.set()
        await svc.close()
        ra = await a  # in-flight batch drained on close
        assert np.asarray(ra.indices).shape == (1, 3)
        with pytest.raises(ServeError):
            await b  # open batch failed with the close error
        with pytest.raises(ServeError):
            await svc.query(hid, R[2:3])

    asyncio.run(go())


def test_refresh_bumps_the_batch_epoch():
    _, R = _data(SEED)

    async def go():
        svc = PortalService()
        try:
            hid = await svc.register(knn_template(R))
            r1 = await svc.query(hid, R[3:4])
            svc.refresh(hid)
            r2 = await svc.query(hid, R[3:4])
            assert np.array_equal(np.asarray(r1.indices),
                                  np.asarray(r2.indices))
        finally:
            await svc.close()

    asyncio.run(go())
