"""Serving differential battery: coalesced == per-request serial, bitwise.

Each of the nine point-query problems (FORALL outer layer) is registered
with a :class:`PortalService`; its query rows are then submitted as
concurrent single-row requests in a *scrambled* order with a small
``batch_max``, so the coalescer stacks them into batches that never
equal the reference execution's query array.  Every scattered slice must
be **bitwise** identical to the corresponding row of one plain
``execute()`` over the full query set: for exact configurations (these
all are — ``tau=0`` where approximation exists) the set of reference
points reaching a query row, the per-pair arithmetic and the per-row
accumulation order are all independent of which other rows share the
traversal.

The matrix covers kd/ball/octree trees and the thread/process parallel
executors (CI runs this directory again under ``REPRO_EXECUTOR=process``
— see ``.github/workflows/ci.yml``).  Mixed-``k`` k-NN requests
interleaved on one handle must *not* share a batch key, and multi-row
requests must slice correctly alongside single-row ones.
"""

import asyncio

import numpy as np
import pytest

from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.serve import AdmissionConfig, PortalService

from tests.backend.test_differential import _data, make_problem

SEED = 101
#: query rows submitted per combo (a prefix of the 28-row harness set;
#: enough for several partial batches without bloating the tier-1 run)
NQ = 12
BATCH_MAX = 5

#: the eight FORALL-outer problems of the shared differential harness
_SHARED = ["knn", "nearest", "kde", "naive_bayes", "range_search",
           "range_count", "em", "barnes_hut"]
#: ... plus "furthest" (FORALL/MAX) for the nine serving problems
SERVE_PROBLEMS = _SHARED + ["furthest"]

TREES = ("kd", "ball", "octree")


def serve_problem(name, seed=SEED):
    """``(build, kind, opts)`` for a point-query (FORALL-outer) problem."""
    if name == "furthest":
        Q, R = _data(seed)

        def build():
            e = PortalExpr("furthest")
            e.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
            e.addLayer(PortalOp.MAX, Storage(R, name="reference"),
                       PortalFunc.EUCLIDEAN)
            return e
        return build, "values", {}
    return make_problem(name, seed)


def _run_opts(opts, tree, executor):
    run = dict(opts, tree=tree)
    if executor != "serial":
        # min_tasks pins the task decomposition (see the backend
        # differential suite) so parallel merge order is reproducible.
        run.update(parallel=True, workers=2, min_tasks=4, executor=executor)
    return run


def _row(res, kind):
    """One request's payload in the differential comparison form."""
    if kind == "values":
        return np.asarray(res.values, dtype=np.float64)
    if kind == "indices":
        return np.asarray(res.indices)
    if kind == "lists":
        return [np.sort(np.asarray(v)) for v in res.indices]
    raise AssertionError(kind)


def _assert_rows_equal(got, ref, kind, ctx):
    if kind == "lists":
        assert len(got) == len(ref), ctx
        for g, e in zip(got, ref):
            assert np.array_equal(g, e), ctx
    else:
        # bitwise: exact array equality, never allclose
        assert got.dtype == ref.dtype, ctx
        assert np.array_equal(got, ref), ctx


def _scrambled(n):
    """Deterministic non-contiguous submit order: odds then evens, so
    no coalesced batch can equal a prefix of the reference query set."""
    return list(range(1, n, 2)) + list(range(0, n, 2))


def _serve_vs_serial(name, tree, executor):
    build, kind, opts = serve_problem(name)
    run = _run_opts(opts, tree, executor)
    Q, _ = _data(SEED)

    ref_out = build().execute(**run)

    async def coalesced():
        svc = PortalService()
        try:
            hid = await svc.register(
                build(), options=run,
                admission=AdmissionConfig(batch_max=BATCH_MAX,
                                          linger_us=250_000,
                                          max_queue=10_000))
            order = _scrambled(NQ)
            results = await asyncio.gather(
                *[svc.query(hid, Q[i:i + 1]) for i in order])
            return order, results, svc.counters.as_dict()
        finally:
            await svc.close()

    order, results, counters = asyncio.run(coalesced())

    assert counters.get("serve.batches", 0) < len(order), \
        "requests were not coalesced at all"
    assert counters.get("serve.coalesced", 0) > 0

    for i, res in zip(order, results):
        ctx = f"{name}/{tree}/{executor} row {i}"
        if kind == "lists":
            _assert_rows_equal(_row(res, kind),
                               [np.sort(np.asarray(ref_out.indices[i]))],
                               kind, ctx)
        else:
            got = _row(res, kind)
            ref = _row(ref_out, kind)[i:i + 1]
            _assert_rows_equal(got, ref, kind, ctx)
            if kind == "indices":
                # k-NN carries values too; they must match bitwise as well
                if res.values is not None and ref_out.values is not None:
                    _assert_rows_equal(
                        np.asarray(res.values),
                        np.asarray(ref_out.values)[i:i + 1], "values", ctx)


@pytest.mark.parametrize("tree", TREES)
@pytest.mark.parametrize("name", SERVE_PROBLEMS)
def test_coalesced_matches_serial(name, tree):
    """Nine problems x three trees, thread executor (CI re-runs the
    directory under REPRO_EXECUTOR=process for the process leg)."""
    _serve_vs_serial(name, tree, "thread")


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
@pytest.mark.parametrize("name", SERVE_PROBLEMS)
def test_coalesced_matches_serial_executors(name, executor):
    """Nine problems x all three executors on the kd tree."""
    _serve_vs_serial(name, "kd", executor)


def test_mixed_k_requests_do_not_share_a_batch():
    """Interleaved knn requests with different k must compile and batch
    separately — and each must still match its own serial reference."""
    build, kind, opts = serve_problem("knn")
    Q, R = _data(SEED)

    refs = {}
    for k in (2, 5):
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
        e.addLayer((PortalOp.KARGMIN, k), Storage(R, name="reference"),
                   PortalFunc.EUCLIDEAN)
        refs[k] = e.execute()

    async def run():
        svc = PortalService()
        try:
            hid = await svc.register(
                build(),
                admission=AdmissionConfig(batch_max=64, linger_us=250_000))
            coros = []
            plan = []  # (k, row)
            for i in range(NQ):
                k = 2 if i % 2 == 0 else 5
                plan.append((k, i))
                coros.append(svc.query(hid, Q[i:i + 1], k=k))
            results = await asyncio.gather(*coros)
            return plan, results, svc.counters.as_dict()
        finally:
            await svc.close()

    plan, results, counters = asyncio.run(run())

    # one warm batch + exactly one batch per distinct k: interleaved
    # requests coalesced within their k but never across k
    assert counters["serve.batches"] == 2
    assert counters["serve.coalesced"] == NQ
    for (k, i), res in zip(plan, results):
        assert np.asarray(res.indices).shape == (1, k)
        assert np.array_equal(np.asarray(res.indices),
                              np.asarray(refs[k].indices)[i:i + 1, :])
        assert np.array_equal(np.asarray(res.values),
                              np.asarray(refs[k].values)[i:i + 1, :])


def test_multi_row_requests_slice_correctly():
    """Mixed request sizes (1/3/5 rows) in one coalesced stream."""
    build, kind, opts = serve_problem("kde")
    run = dict(opts)
    Q, _ = _data(SEED)
    ref = np.asarray(build().execute(**run).values, dtype=np.float64)

    chunks = [Q[0:1], Q[1:4], Q[4:9], Q[9:10], Q[10:12]]
    spans = [(0, 1), (1, 4), (4, 9), (9, 10), (10, 12)]

    async def go():
        svc = PortalService()
        try:
            hid = await svc.register(
                build(), options=run,
                admission=AdmissionConfig(batch_max=64, linger_us=250_000))
            results = await asyncio.gather(
                *[svc.query(hid, c) for c in chunks])
            return results, svc.counters.as_dict()
        finally:
            await svc.close()

    results, counters = asyncio.run(go())
    assert counters["serve.batches"] == 1  # everything shared one traversal
    for (lo, hi), res in zip(spans, results):
        got = np.asarray(res.values, dtype=np.float64)
        assert got.shape[0] == hi - lo
        assert np.array_equal(got, ref[lo:hi])


def test_per_request_options_split_batches():
    """Requests overriding execute() options must not share a batch with
    default-option requests (different compiled program)."""
    build, kind, opts = serve_problem("kde")
    Q, _ = _data(SEED)

    async def go():
        svc = PortalService()
        try:
            hid = await svc.register(
                build(), options=dict(opts),
                admission=AdmissionConfig(batch_max=64, linger_us=250_000))
            a, b = await asyncio.gather(
                svc.query(hid, Q[0:2]),
                svc.query(hid, Q[0:2], options={"tree": "ball"}))
            return a, b, svc.counters.as_dict()
        finally:
            await svc.close()

    a, b, counters = asyncio.run(go())
    assert counters["serve.batches"] == 2
    # same exact math either way
    assert np.array_equal(np.asarray(a.values), np.asarray(b.values))
