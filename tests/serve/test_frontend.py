"""JSON-over-TCP frontend protocol tests.

All in-process: each test starts a :class:`ServeFrontend` on an
ephemeral loopback port, speaks newline-delimited JSON over asyncio
streams, and shuts the server down.
"""

import asyncio
import json

import numpy as np

from repro.serve import PortalService, ServeFrontend

from tests.backend.test_differential import _data

SEED = 101

PROGRAM = """
Storage query("q.csv");
Storage reference("r.csv");
PortalExpr nn;
nn.addLayer(FORALL, query);
nn.addLayer((KARGMIN, 3), reference, EUCLIDEAN);
"""

TWO_EXPRS = PROGRAM + """
PortalExpr wide;
wide.addLayer(FORALL, query);
wide.addLayer((KARGMIN, 5), reference, EUCLIDEAN);
"""


def _bindings():
    Q, R = _data(SEED)
    return Q, R, {"q.csv": Q[:1].tolist(), "r.csv": R.tolist()}


class _Client:
    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    async def send(self, obj):
        self.writer.write(json.dumps(obj).encode() + b"\n")
        await self.writer.drain()

    async def recv(self):
        line = await self.reader.readline()
        assert line, "server closed the connection"
        return json.loads(line)

    async def rpc(self, obj):
        await self.send(obj)
        return await self.recv()

    def close(self):
        self.writer.close()


async def _connect(fe):
    reader, writer = await asyncio.open_connection(fe.host, fe.port)
    return _Client(reader, writer)


def _with_frontend(test_coro):
    async def runner():
        fe = ServeFrontend(PortalService())
        await fe.start()
        try:
            await test_coro(fe)
        finally:
            await fe.close()

    asyncio.run(runner())


def test_register_query_stats_roundtrip():
    Q, R, data = _bindings()

    async def scenario(fe):
        c = await _connect(fe)
        assert (await c.rpc({"op": "health", "id": 0}))["status"] == "ok"
        reg = await c.rpc({"op": "register", "id": 1, "program": PROGRAM,
                           "data": data})
        assert reg["ok"] and reg["id"] == 1
        hid = reg["handle"]

        q = await c.rpc({"op": "query", "id": 2, "handle": hid,
                         "points": Q[:4].tolist(), "k": 2})
        assert q["ok"] and q["rows"] == 4

        ref = np.argsort(
            ((Q[:4, None, :] - R[None, :, :]) ** 2).sum(-1), axis=1)[:, :2]
        # k-NN indices agree with brute force up to in-k ordering
        assert np.array_equal(np.sort(q["indices"], axis=1),
                              np.sort(ref, axis=1))

        st = await c.rpc({"op": "stats", "id": 3})
        assert st["counters"]["serve.batches"] >= 1
        assert hid in st["handles"]
        un = await c.rpc({"op": "unregister", "id": 4, "handle": hid})
        assert un["ok"]
        st = await c.rpc({"op": "stats", "id": 5})
        assert hid not in st["handles"]
        c.close()

    _with_frontend(scenario)


def test_pipelined_queries_on_one_connection_coalesce():
    Q, R, data = _bindings()

    async def scenario(fe):
        c = await _connect(fe)
        reg = await c.rpc({"op": "register", "program": PROGRAM,
                           "data": data,
                           "admission": {"batch_max": 64,
                                         "linger_us": 250000}})
        hid = reg["handle"]
        n = 8
        # fire all requests before reading any response: the per-line
        # tasks coalesce exactly like separate clients
        for i in range(n):
            await c.send({"op": "query", "id": 100 + i, "handle": hid,
                          "points": [Q[i].tolist()]})
        got = {}
        for _ in range(n):
            resp = await c.recv()
            assert resp["ok"], resp
            got[resp["id"]] = resp
        assert set(got) == {100 + i for i in range(n)}

        st = await c.rpc({"op": "stats"})
        assert st["counters"]["serve.coalesced"] >= 2
        assert st["counters"]["serve.batches"] < n
        c.close()

    _with_frontend(scenario)


def test_error_payloads():
    Q, R, data = _bindings()

    async def scenario(fe):
        c = await _connect(fe)
        r = await c.rpc({"op": "frobnicate", "id": 1})
        assert not r["ok"] and "unknown op" in r["error"]["message"]
        assert r["error"]["portal"] and not r["error"]["retryable"]

        r = await c.rpc({"op": "query", "id": 2})
        assert not r["ok"] and "handle" in r["error"]["message"]

        r = await c.rpc({"op": "query", "id": 3, "handle": "nope",
                         "points": [[0, 0, 0]]})
        assert not r["ok"] and r["error"]["type"] == "ServeError"

        # malformed JSON still yields a framed error, connection survives
        c.writer.write(b"{nope\n")
        await c.writer.drain()
        r = await c.recv()
        assert not r["ok"] and r["error"]["type"] == "JSONDecodeError"
        assert (await c.rpc({"op": "health", "id": 4}))["ok"]

        # shed errors are marked retryable
        reg = await c.rpc({"op": "register", "program": PROGRAM,
                           "data": data, "admission": {"max_queue": 2}})
        hid = reg["handle"]
        r = await c.rpc({"op": "query", "id": 5, "handle": hid,
                         "points": Q[:3].tolist()})
        assert not r["ok"]
        assert r["error"]["type"] == "ServiceOverloaded"
        assert r["error"]["retryable"]
        c.close()

    _with_frontend(scenario)


def test_register_picks_named_expr_and_rejects_ambiguity():
    Q, R, data = _bindings()

    async def scenario(fe):
        c = await _connect(fe)
        r = await c.rpc({"op": "register", "program": TWO_EXPRS,
                         "data": data})
        assert not r["ok"] and "pick one" in r["error"]["message"]

        r = await c.rpc({"op": "register", "program": TWO_EXPRS,
                         "data": data, "expr": "wide", "name": "wide-h"})
        assert r["ok"] and r["handle"] == "wide-h"
        q = await c.rpc({"op": "query", "handle": "wide-h",
                         "points": Q[:2].tolist()})
        assert q["ok"] and np.asarray(q["indices"]).shape == (2, 5)
        c.close()

    _with_frontend(scenario)


def test_two_connections_share_handles_and_coalesce():
    Q, R, data = _bindings()

    async def scenario(fe):
        c1 = await _connect(fe)
        c2 = await _connect(fe)
        reg = await c1.rpc({"op": "register", "program": PROGRAM,
                            "data": data, "name": "shared",
                            "admission": {"batch_max": 64,
                                          "linger_us": 250000}})
        assert reg["ok"]
        await c1.send({"op": "query", "id": 1, "handle": "shared",
                       "points": [Q[0].tolist()]})
        await c2.send({"op": "query", "id": 2, "handle": "shared",
                       "points": [Q[1].tolist()]})
        r1, r2 = await asyncio.gather(c1.recv(), c2.recv())
        assert r1["ok"] and r2["ok"]
        st = await c1.rpc({"op": "stats"})
        assert st["counters"]["serve.queries"] == 2
        c1.close()
        c2.close()

    _with_frontend(scenario)
