"""Differential tests: batched frontier engine vs the scalar stack engine.

The batched engine's contract (see ``src/repro/traversal/batched.py``) is
*bit-identical* outputs AND identical ``TraversalStats`` counters versus
the stack engine — classification is stateless and the replay phase
applies side effects in exactly the stack engine's order.  These tests
pin that contract across tree kinds for both prune-heavy (range search /
count) and approximation-heavy (KDE band, KDE multipole-acceptance)
configurations, plus the automatic routing of stateful bound rules to
the epoch-based bounded engine (``test_bounded_batched.py`` covers that
engine differentially).
"""

import numpy as np
import pytest

from repro.dsl import (
    PortalExpr, PortalFunc, PortalOp, Storage, indicator, pow, sqrt, Var,
)
from repro.dsl.errors import SpecificationError
from repro.observe import collect
from repro.problems import knn, range_search

TREES = ["kd", "ball", "octree"]


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(20260806)
    Q = np.ascontiguousarray(rng.uniform(0.0, 6.0, size=(400, 3)))
    R = np.ascontiguousarray(rng.uniform(0.0, 6.0, size=(500, 3)))
    return Q, R


def _kde_expr(Q, R, bandwidth=0.8):
    expr = PortalExpr("kde-differential")
    expr.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
    expr.addLayer(PortalOp.SUM, Storage(R, name="reference"),
                  PortalFunc.GAUSSIAN, bandwidth=bandwidth)
    return expr


def _range_count_expr(Q, R, h=1.0):
    q, r = Var("q"), Var("r")
    expr = PortalExpr("range-count-differential")
    expr.addLayer(PortalOp.FORALL, q, Storage(Q, name="query"))
    expr.addLayer(PortalOp.SUM, r, Storage(R, name="reference"),
                  indicator(sqrt(pow(q - r, 2)) < h))
    return expr


def _run(expr_maker, **options):
    """Execute a freshly built expr; returns (values, traversal counters,
    engine)."""
    expr = expr_maker()
    with collect() as counters:
        out = expr.execute(**options)
    # frontier_peak is batched-only bookkeeping: drop it so counter
    # dictionaries stay directly comparable against the stack engine.
    trav = {k: v for k, v in counters.as_dict().items()
            if k.startswith("traversal.") and k != "traversal.frontier_peak"}
    return out, trav, expr.stats().get("traversal_engine")


class TestPruneHeavyDifferential:
    """Range count: indicator rule with a count action (pruning problem)."""

    @pytest.mark.parametrize("tree", TREES)
    def test_bitwise_outputs_and_counters(self, data, tree):
        Q, R = data
        maker = lambda: _range_count_expr(Q, R, h=1.2)
        stack, c_stack, e_stack = _run(maker, tree=tree, leaf_size=8, traversal="stack")
        batch, c_batch, e_batch = _run(maker, tree=tree, leaf_size=8, traversal="batched")
        assert e_stack == "stack" and e_batch == "batched"
        assert np.array_equal(np.asarray(stack.values),
                              np.asarray(batch.values))
        assert c_stack == c_batch
        assert c_stack["traversal.pruned"] > 0

    @pytest.mark.parametrize("tree", TREES)
    def test_range_search_lists_identical(self, data, tree):
        Q, R = data
        stack = range_search(Q, R, h=0.9, tree=tree, leaf_size=8, traversal="stack")
        batch = range_search(Q, R, h=0.9, tree=tree, leaf_size=8, traversal="batched")
        assert len(stack) == len(batch)
        for a, b in zip(stack, batch):
            assert np.array_equal(a, b)

    def test_self_search_excludes_self_identically(self, data):
        Q, _ = data
        stack = range_search(Q, h=0.9, leaf_size=8, traversal="stack")
        batch = range_search(Q, h=0.9, leaf_size=8, traversal="batched")
        for i, (a, b) in enumerate(zip(stack, batch)):
            assert np.array_equal(a, b)
            assert i not in a


class TestApproxHeavyDifferential:
    """KDE: approximation rule (band and multipole-acceptance criteria)."""

    @pytest.mark.parametrize("tree", TREES)
    def test_band_bitwise(self, data, tree):
        Q, R = data
        maker = lambda: _kde_expr(Q, R)
        stack, c_stack, _ = _run(maker, tree=tree, tau=1e-3,
                                 leaf_size=8, traversal="stack")
        batch, c_batch, e_batch = _run(maker, tree=tree, tau=1e-3,
                                       leaf_size=8, traversal="batched")
        assert e_batch == "batched"
        assert np.array_equal(np.asarray(stack.values),
                              np.asarray(batch.values))
        assert c_stack == c_batch
        assert c_stack["traversal.approximated"] > 0

    def test_mac_bitwise(self, data):
        Q, R = data
        maker = lambda: _kde_expr(Q, R)
        stack, c_stack, _ = _run(maker, criterion="mac", theta=0.6,
                                 leaf_size=8, traversal="stack")
        batch, c_batch, _ = _run(maker, criterion="mac", theta=0.6,
                                 leaf_size=8, traversal="batched")
        assert np.array_equal(np.asarray(stack.values),
                              np.asarray(batch.values))
        assert c_stack == c_batch
        assert c_stack["traversal.approximated"] > 0

    def test_weighted_band_bitwise(self, data):
        Q, R = data
        rng = np.random.default_rng(7)
        w = rng.uniform(0.5, 2.0, size=len(R))

        def maker():
            expr = PortalExpr("weighted-kde-differential")
            expr.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
            expr.addLayer(PortalOp.SUM,
                          Storage(R, weights=w, name="reference"),
                          PortalFunc.GAUSSIAN, bandwidth=0.8)
            return expr

        stack, c_stack, _ = _run(maker, tau=1e-3, leaf_size=8, traversal="stack")
        batch, c_batch, _ = _run(maker, tau=1e-3, leaf_size=8, traversal="batched")
        assert np.array_equal(np.asarray(stack.values),
                              np.asarray(batch.values))
        assert c_stack == c_batch


class TestEngineSelection:
    def test_bound_rule_routes_to_bounded_batched(self, data):
        """k-NN's bound rule reads mutable best values mid-traversal —
        the frontier engine routes it to the epoch-based bound-aware
        variant (and stays correct)."""
        Q, R = data
        qs = Storage(Q, name="query")
        rs = Storage(R, name="reference")
        expr = PortalExpr("knn-routing")
        expr.addLayer(PortalOp.FORALL, qs)
        expr.addLayer((PortalOp.KARGMIN, 3), rs, PortalFunc.EUCLIDEAN)
        expr.execute(traversal="batched")
        assert expr.stats()["traversal_engine"] == "bounded-batched"
        assert expr.stats()["bounded"]["epochs"] > 0
        d_tree, i_tree = knn(Q, R, k=3, traversal="batched")
        d_brute, i_brute = knn(Q, R, k=3, backend="brute")
        assert np.array_equal(i_tree, i_brute)

    def test_stack_override_still_honoured(self, data):
        """traversal='stack' forces the scalar engine even for bound
        rules — the escape hatch the routing table documents."""
        Q, R = data
        qs = Storage(Q, name="query")
        rs = Storage(R, name="reference")
        expr = PortalExpr("knn-stack-override")
        expr.addLayer(PortalOp.FORALL, qs)
        expr.addLayer((PortalOp.KARGMIN, 3), rs, PortalFunc.EUCLIDEAN)
        expr.execute(traversal="stack")
        assert expr.stats()["traversal_engine"] == "stack"

    def test_no_rule_runs_batched(self, data):
        """Without any rule the frontier engine still handles the plain
        recursion + base cases (classify_batch is None)."""
        Q, R = data
        maker = lambda: _kde_expr(Q, R)
        # tau=0 keeps the approximation rule from ever firing but the
        # rule still exists; compare against an exact brute reference.
        stack, c_stack, _ = _run(maker, tau=0.0, leaf_size=8, traversal="stack")
        batch, c_batch, _ = _run(maker, tau=0.0, leaf_size=8, traversal="batched")
        assert np.array_equal(np.asarray(stack.values),
                              np.asarray(batch.values))
        assert c_stack == c_batch

    def test_invalid_engine_rejected(self, data):
        Q, R = data
        with pytest.raises(SpecificationError, match="traversal"):
            _kde_expr(Q, R).execute(traversal="warp")

    def test_stats_report_engine(self, data):
        Q, R = data
        expr = _kde_expr(Q, R)
        expr.execute(traversal="batched")
        assert expr.stats()["traversal_engine"] == "batched"
        expr.execute(traversal="stack")
        assert expr.stats()["traversal_engine"] == "stack"


class TestParallelBatched:
    def test_parallel_batched_matches_parallel_stack(self, data):
        """Same pinned task decomposition, same per-task replay order →
        bitwise identical outputs between the engines under parallel."""
        Q, R = data
        maker = lambda: _kde_expr(Q, R)
        stack, c_stack, _ = _run(maker, tau=1e-3, leaf_size=8, parallel=True, workers=2,
                                 min_tasks=8, traversal="stack")
        batch, c_batch, _ = _run(maker, tau=1e-3, leaf_size=8, parallel=True, workers=2,
                                 min_tasks=8, traversal="batched")
        assert np.array_equal(np.asarray(stack.values),
                              np.asarray(batch.values))
        assert c_stack == c_batch

    def test_parallel_batched_matches_serial_batched(self, data):
        Q, R = data
        maker = lambda: _range_count_expr(Q, R, h=1.2)
        serial, _, _ = _run(maker, leaf_size=8, traversal="batched")
        par, _, _ = _run(maker, leaf_size=8, parallel=True, workers=2,
                         min_tasks=8, traversal="batched")
        # Counts are order-independent integers: exact equality.
        assert np.array_equal(np.asarray(serial.values),
                              np.asarray(par.values))
