"""Differential tests: epoch-based bounded engine vs the scalar stack engine.

The bounded engine's contract (``src/repro/traversal/bounded_batched.py``)
is *exact* outputs — a stale bound snapshot can only under-prune, never
mis-prune — with pruning work equivalent-or-better than the stack
engine's nearest-first order.  These tests pin that contract for the
bound-rule problems (k-NN, directed Hausdorff, k-NN regression, a
bound-max furthest-point query) across tree kinds and all three
execution modes, plus the engine routing and counter surfaces.
"""

import math

import numpy as np
import pytest

from repro.backend.cache import clear_caches
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.observe import collect
from repro.problems import directed_hausdorff, knn, knn_regress
from repro.traversal.bounded_batched import RAMP_START, DEFAULT_EPOCH_SIZE

TREES = ["kd", "ball", "octree"]
PAR = {"parallel": True, "workers": 2, "min_tasks": 8}
MODES = {
    "serial": {},
    "thread": dict(PAR, executor="thread"),
    "process": dict(PAR, executor="process"),
}


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(5)
    Q = np.ascontiguousarray(rng.uniform(0.0, 6.0, size=(400, 3)))
    R = np.ascontiguousarray(rng.uniform(0.0, 6.0, size=(500, 3)))
    return Q, R


def _pairs(counters):
    return counters.as_dict().get("traversal.base_case_pairs", 0)


def _run(fn, **options):
    clear_caches()
    with collect() as counters:
        out = fn(**options)
    return out, counters


class TestDifferential:
    @pytest.mark.parametrize("tree", TREES)
    def test_knn_matches_stack(self, data, tree):
        Q, R = data
        (sd, si), c_stack = _run(knn, query=Q, reference=R, k=5,
                                 tree=tree, leaf_size=16, traversal="stack")
        (bd, bi), c_bound = _run(knn, query=Q, reference=R, k=5,
                                 tree=tree, leaf_size=16, traversal="batched")
        assert np.array_equal(sd, bd)
        assert np.array_equal(si, bi)
        assert _pairs(c_bound) <= _pairs(c_stack)

    @pytest.mark.parametrize("tree", TREES)
    def test_hausdorff_matches_stack(self, data, tree):
        Q, R = data
        s, c_stack = _run(directed_hausdorff, A=Q, B=R,
                          tree=tree, leaf_size=16, traversal="stack")
        b, c_bound = _run(directed_hausdorff, A=Q, B=R,
                          tree=tree, leaf_size=16, traversal="batched")
        assert s == b
        assert _pairs(c_bound) <= _pairs(c_stack)

    @pytest.mark.parametrize("mode", list(MODES))
    def test_knn_across_executors(self, data, mode):
        Q, R = data
        (sd, si), _ = _run(knn, query=Q, reference=R, k=5,
                           traversal="stack", **MODES[mode])
        (bd, bi), _ = _run(knn, query=Q, reference=R, k=5,
                           traversal="batched", **MODES[mode])
        assert np.array_equal(sd, bd)
        assert np.array_equal(si, bi)

    @pytest.mark.parametrize("mode", list(MODES))
    def test_hausdorff_across_executors(self, data, mode):
        Q, R = data
        s, _ = _run(directed_hausdorff, A=Q, B=R, traversal="stack",
                    **MODES[mode])
        b, _ = _run(directed_hausdorff, A=Q, B=R, traversal="batched",
                    **MODES[mode])
        assert s == b

    def test_knn_regress_matches_stack(self, data):
        Q, R = data
        y = np.arange(len(R), dtype=float)
        s, _ = _run(knn_regress, X_train=R, y_train=y, X_test=Q, k=3,
                    traversal="stack")
        b, _ = _run(knn_regress, X_train=R, y_train=y, X_test=Q, k=3,
                    traversal="batched")
        assert np.array_equal(np.asarray(s), np.asarray(b))

    def test_self_exclusion_knn(self, data):
        """Single-set k-NN excludes self-pairs inside the grouped base
        case (the np.where exclusion path in base_case_group)."""
        Q, _ = data
        (sd, si), _ = _run(knn, query=Q, k=4, traversal="stack")
        (bd, bi), _ = _run(knn, query=Q, k=4, traversal="batched")
        assert np.array_equal(sd, bd)
        assert np.array_equal(si, bi)
        assert not np.any(bi == np.arange(len(Q))[:, None])

    def test_k1_argmin_path(self, data):
        """k=1 lowers to plain ARGMIN — the scalar-best kernel variant."""
        Q, R = data
        (sd, si), _ = _run(knn, query=Q, reference=R, k=1, traversal="stack")
        (bd, bi), _ = _run(knn, query=Q, reference=R, k=1,
                           traversal="batched")
        assert np.array_equal(sd, bd)
        assert np.array_equal(si, bi)


def _furthest_expr(Q, R, k=3):
    """Furthest-point query: KARGMAX + EUCLIDEAN lowers to a bound-max
    rule (prune when the pair's *max* distance cannot beat the k-th
    furthest so far) — the mirrored sign convention."""
    expr = PortalExpr("furthest-points")
    expr.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
    expr.addLayer((PortalOp.KARGMAX, k), Storage(R, name="reference"),
                  PortalFunc.EUCLIDEAN)
    return expr


class TestBoundMax:
    def test_furthest_matches_stack(self, data):
        Q, R = data
        clear_caches()
        s = _furthest_expr(Q, R).execute(traversal="stack")
        clear_caches()
        b = _furthest_expr(Q, R).execute(traversal="batched")
        assert np.array_equal(np.asarray(s.values), np.asarray(b.values))
        assert np.array_equal(np.asarray(s.indices), np.asarray(b.indices))

    def test_furthest_routes_bounded(self, data):
        Q, R = data
        clear_caches()
        expr = _furthest_expr(Q, R)
        expr.execute(traversal="batched")
        assert expr.stats()["traversal_engine"] == "bounded-batched"


class TestRoutingAndCounters:
    def test_knn_reports_bounded_engine(self, data):
        Q, R = data
        clear_caches()
        expr = PortalExpr("knn-stats")
        expr.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
        expr.addLayer((PortalOp.KARGMIN, 5), Storage(R, name="reference"),
                      PortalFunc.EUCLIDEAN)
        expr.execute(traversal="batched")
        stats = expr.stats()
        assert stats["traversal_engine"] == "bounded-batched"
        bounded = stats["bounded"]
        assert set(bounded) >= {"epochs", "deferred_prunes",
                                "bound_refreshes", "pending_peak"}
        assert bounded["epochs"] >= 1
        assert bounded["bound_refreshes"] >= 1
        assert bounded["pending_peak"] >= 1

    def test_explicit_bounded_request(self, data):
        Q, R = data
        clear_caches()
        (bd, bi), _ = _run(knn, query=Q, reference=R, k=5,
                           traversal="bounded-batched")
        (sd, si), _ = _run(knn, query=Q, reference=R, k=5, traversal="stack")
        assert np.array_equal(sd, bd)

    def test_bounded_request_on_stateless_degrades_to_batched(self, data):
        from repro.problems import kde
        Q, R = data
        clear_caches()
        expr = PortalExpr("kde-degrade")
        expr.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
        expr.addLayer(PortalOp.SUM, Storage(R, name="reference"),
                      PortalFunc.GAUSSIAN, bandwidth=0.8)
        expr.execute(traversal="bounded-batched")
        assert expr.stats()["traversal_engine"] == "batched"

    def test_bounded_counters_observable(self, data):
        Q, R = data
        _, counters = _run(knn, query=Q, reference=R, k=5, leaf_size=16,
                           traversal="batched")
        snap = counters.as_dict()
        assert snap.get("bounded.epochs", 0) >= 1
        assert snap.get("bounded.bound_refreshes", 0) >= 1
        assert snap.get("traversal.pruned", 0) > 0

    def test_ramp_constants_sane(self):
        assert 1 <= RAMP_START <= DEFAULT_EPOCH_SIZE

    def test_qbound_monotone_conservative(self, data):
        """The engine's safety argument: every reported k-th neighbour
        distance is a valid upper bound on the query's true k-th
        distance, and pruning never loses a neighbour (already asserted
        bitwise above) — spot-check against brute force."""
        Q, R = data
        clear_caches()
        (bd, bi), _ = _run(knn, query=Q, reference=R, k=5,
                           traversal="batched")
        (brd, bri), _ = _run(knn, query=Q, reference=R, k=5,
                             backend="brute")
        assert np.allclose(bd, brd)
        assert np.array_equal(bi, bri)
