"""Counter-identity tests for the traversal observability layer.

Every dual-tree traversal classifies each visited node pair exactly one
way — pruned, approximated, recursed, or leaf base case — so the stats
must satisfy ``visited == pruned + approximated + recursions +
base_cases`` on every tree type and problem class.  The same numbers
must surface through the :mod:`repro.observe` counters registry.
"""

import numpy as np
import pytest

from repro.dsl import (
    PortalExpr, PortalFunc, PortalOp, Storage, Var, indicator, pow, sqrt,
)
from repro.observe import collect

TREES = ["kd", "ball", "octree"]


@pytest.fixture
def qr():
    rng = np.random.default_rng(77)
    return (rng.uniform(0, 10, size=(400, 3)),
            rng.uniform(0, 10, size=(450, 3)))


def _knn(Q, R):
    e = PortalExpr()
    e.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
    e.addLayer(PortalOp.ARGMIN, Storage(R, name="reference"),
               PortalFunc.EUCLIDEAN)
    return e, {}


def _range_search(Q, R):
    q, r = Var("q"), Var("r")
    e = PortalExpr()
    e.addLayer(PortalOp.FORALL, q, Storage(Q, name="query"))
    e.addLayer(PortalOp.UNIONARG, r, Storage(R, name="reference"),
               indicator(sqrt(pow(q - r, 2)) < 1.2))
    return e, {}


def _kde(Q, R):
    e = PortalExpr()
    e.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
    e.addLayer(PortalOp.SUM, Storage(R, name="reference"),
               PortalFunc.GAUSSIAN, bandwidth=0.5)
    return e, {"tau": 1e-3}


BUILDERS = {"knn": _knn, "range_search": _range_search, "kde": _kde}


def _check_identity(st):
    assert st.visited == (st.pruned + st.approximated + st.recursions
                          + st.base_cases)
    assert st.visited > 0
    assert st.base_cases > 0


@pytest.mark.parametrize("tree", TREES)
@pytest.mark.parametrize("problem", sorted(BUILDERS))
def test_identity_holds(problem, tree, qr):
    Q, R = qr
    expr, opts = BUILDERS[problem](Q, R)
    with collect() as counters:
        expr.execute(tree=tree, **opts)
    st = expr.program.stats
    _check_identity(st)
    # The observe registry mirrors the per-run stats exactly.
    for key in ("visited", "pruned", "approximated", "recursions",
                "base_cases", "base_case_pairs"):
        assert counters.get(f"traversal.{key}") == getattr(st, key), key


@pytest.mark.parametrize("problem", sorted(BUILDERS))
def test_brute_force_never_prunes(problem, qr):
    Q, R = qr
    expr, opts = BUILDERS[problem](Q, R)
    with collect() as counters:
        expr.execute(backend="brute", **opts)
    st = expr.program.stats
    assert st.pruned == 0
    assert st.approximated == 0
    assert st.base_case_pairs == len(Q) * len(R)
    assert counters.get("traversal.pruned") == 0
    assert counters.get("traversal.base_case_pairs") == len(Q) * len(R)


def test_pruning_problem_actually_prunes(qr):
    Q, R = qr
    expr, opts = BUILDERS["knn"](Q, R)
    expr.execute(leaf_size=8, **opts)
    st = expr.program.stats
    _check_identity(st)
    assert st.pruned > 0
    assert 0.0 < st.prune_rate < 1.0
    assert st.base_case_pairs < len(Q) * len(R)


def test_approximation_problem_approximates(qr):
    Q, R = qr
    # A narrow-bandwidth KDE collapses far node pairs to their centroid
    # contribution (the kernel band is below tau on both ends).
    e = PortalExpr()
    e.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
    e.addLayer(PortalOp.SUM, Storage(R, name="reference"),
               PortalFunc.GAUSSIAN, bandwidth=0.5)
    e.execute(tau=1e-3, leaf_size=8)
    st = e.program.stats
    _check_identity(st)
    assert st.approximated > 0
    assert st.approx_rate > 0.0


def test_stats_as_dict_round_trip(qr):
    Q, R = qr
    expr, opts = BUILDERS["knn"](Q, R)
    expr.execute(**opts)
    d = expr.program.stats.as_dict()
    assert d["visited"] == expr.program.stats.visited
    assert set(d) == {"visited", "pruned", "approximated", "recursions",
                      "base_cases", "base_case_pairs"}
