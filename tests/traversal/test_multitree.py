"""Tests for Algorithm 1: the multi-tree and dual-tree traversals."""

import numpy as np
import pytest

from repro.traversal import (
    TraversalStats, dual_tree_traversal, multi_tree_traversal,
)
from repro.trees import build_kdtree


@pytest.fixture
def rng():
    return np.random.default_rng(13)


class TestDualTree:
    def test_no_rules_visits_all_leaf_pairs(self, rng):
        t1 = build_kdtree(rng.normal(size=(64, 2)), leaf_size=8)
        t2 = build_kdtree(rng.normal(size=(48, 2)), leaf_size=8)
        pairs = []
        stats = dual_tree_traversal(
            t1, t2, None, lambda qs, qe, rs, re: pairs.append((qs, rs))
        )
        assert stats.base_cases == len(t1.leaves()) * len(t2.leaves())
        assert stats.base_case_pairs == 64 * 48
        assert len(set(pairs)) == len(pairs)

    def test_prune_respected(self, rng):
        t = build_kdtree(rng.normal(size=(64, 2)), leaf_size=8)
        stats = dual_tree_traversal(
            t, t, lambda qi, ri: 1, lambda *a: pytest.fail("pruned pair ran")
        )
        assert stats.pruned == 1 and stats.base_cases == 0

    def test_approx_counted(self, rng):
        t = build_kdtree(rng.normal(size=(64, 2)), leaf_size=8)
        stats = dual_tree_traversal(t, t, lambda qi, ri: 2, lambda *a: None)
        assert stats.approximated == 1

    def test_nearest_first_ordering_called(self, rng):
        t = build_kdtree(rng.normal(size=(64, 2)), leaf_size=8)
        calls = []

        def pair_min(qi, ri):
            calls.append((qi, ri))
            return 0.0

        dual_tree_traversal(t, t, None, lambda *a: None, pair_min_dist=pair_min)
        assert calls  # ordering callback exercised

    def test_subtree_root_restriction(self, rng):
        t = build_kdtree(rng.normal(size=(64, 2)), leaf_size=8)
        left = int(t.children(0)[0])
        seen = []
        dual_tree_traversal(t, t, None,
                            lambda qs, qe, rs, re: seen.append((qs, qe)),
                            q_root=left)
        lo, hi = t.slice(left)
        assert all(lo <= qs and qe <= hi for qs, qe in seen)


class TestMultiTree:
    def test_two_trees_matches_dual(self, rng):
        t1 = build_kdtree(rng.normal(size=(32, 2)), leaf_size=4)
        t2 = build_kdtree(rng.normal(size=(40, 2)), leaf_size=4)
        count = [0]
        stats = multi_tree_traversal(
            [t1, t2], None, lambda a, b: count.__setitem__(0, count[0] + 1)
        )
        assert count[0] == len(t1.leaves()) * len(t2.leaves())
        assert stats.base_case_pairs == 32 * 40

    def test_three_trees_power_set(self, rng):
        trees = [build_kdtree(rng.normal(size=(16, 2)), leaf_size=4)
                 for _ in range(3)]
        count = [0]
        multi_tree_traversal(
            trees, None, lambda a, b, c: count.__setitem__(0, count[0] + 1)
        )
        expect = np.prod([len(t.leaves()) for t in trees])
        assert count[0] == expect

    def test_prune_short_circuits(self, rng):
        trees = [build_kdtree(rng.normal(size=(16, 2)), leaf_size=4)
                 for _ in range(2)]
        stats = multi_tree_traversal(trees, lambda a, b: 1, lambda a, b: None)
        assert stats.visited == 1 and stats.pruned == 1

    def test_stats_merge(self):
        a = TraversalStats(visited=1, pruned=2, approximated=3,
                           base_cases=4, base_case_pairs=5)
        b = TraversalStats(visited=10, pruned=20, approximated=30,
                           base_cases=40, base_case_pairs=50)
        a.merge(b)
        assert (a.visited, a.pruned, a.approximated, a.base_cases,
                a.base_case_pairs) == (11, 22, 33, 44, 55)
