"""Tests for the single-tree traversal scheme."""

import numpy as np
import pytest

from repro.baselines import brute
from repro.traversal import single_tree_knn, single_tree_traversal
from repro.trees import build_kdtree


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestWalk:
    def test_no_prune_visits_every_leaf(self, rng):
        R = rng.normal(size=(64, 2))
        tree = build_kdtree(R, leaf_size=8)
        seen = []
        stats = single_tree_traversal(
            tree, R[0], None, lambda s, e: seen.append((s, e))
        )
        assert stats.base_cases == len(tree.leaves())
        assert stats.base_case_pairs == 64

    def test_prune_respected(self, rng):
        R = rng.normal(size=(64, 2))
        tree = build_kdtree(R, leaf_size=8)
        stats = single_tree_traversal(
            tree, R[0], lambda node: 1,
            lambda s, e: pytest.fail("pruned node ran"),
        )
        assert stats.pruned == 1

    def test_nearest_first_ordering_used(self, rng):
        R = rng.normal(size=(64, 2))
        tree = build_kdtree(R, leaf_size=8)
        calls = []
        single_tree_traversal(
            tree, R[0], None, lambda s, e: None,
            point_min_dist=lambda n: calls.append(n) or 0.0,
        )
        assert calls


class TestSingleTreeKnn:
    def test_matches_brute(self, rng):
        Q = rng.normal(size=(60, 3))
        R = rng.normal(size=(80, 3))
        tree = build_kdtree(R, leaf_size=8)
        d, i = single_tree_knn(Q, tree, k=4)
        db, ib = brute.brute_knn(Q, R, k=4)
        assert np.allclose(d, db)
        assert np.array_equal(tree.perm[i], ib)

    def test_matches_dual_tree_engine(self, rng):
        from repro.problems import knn

        Q = rng.normal(size=(70, 5))
        R = rng.normal(size=(90, 5))
        tree = build_kdtree(R, leaf_size=8)
        d_single, _ = single_tree_knn(Q, tree, k=2)
        d_dual, _ = knn(Q, R, k=2, fastmath=False)
        assert np.allclose(d_single, d_dual)

    def test_self_exclusion(self, rng):
        X = rng.normal(size=(50, 3))
        tree = build_kdtree(X, leaf_size=8)
        # exclude_index names each query's own permuted position.
        inv = np.empty(50, dtype=np.int64)
        inv[tree.perm] = np.arange(50)
        d, i = single_tree_knn(X, tree, k=1, exclude_index=inv)
        assert np.all(tree.perm[i[:, 0]] != np.arange(50))
        db, _ = brute.brute_knn(X, X, k=1, exclude_self=True)
        assert np.allclose(d[:, 0], db)

    def test_pruning_actually_prunes(self, rng):
        # Clustered data: walks from one cluster should skip the other.
        A = rng.normal(size=(100, 2)) * 0.1
        B = rng.normal(size=(100, 2)) * 0.1 + 50.0
        tree = build_kdtree(np.concatenate([A, B]), leaf_size=8)
        stats_total = []

        x = A[0]
        best = np.full(1, np.inf)

        def point_min(node):
            g = np.maximum(0.0, np.maximum(tree.lo[node] - x,
                                           x - tree.hi[node]))
            return float(g @ g)

        def prune(node):
            return 1 if point_min(node) > best[0] else 0

        def base_case(s, e):
            d = tree.points[s:e] - x
            best[0] = min(best[0], float(np.einsum("ij,ij->i", d, d).min()))

        st = single_tree_traversal(tree, x, prune, base_case,
                                   point_min_dist=point_min)
        assert st.pruned > 0
        assert st.base_case_pairs < 200
