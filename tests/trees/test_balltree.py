"""Tests for the ball tree (plug-and-play tree type)."""

import numpy as np
import pytest

from repro.trees import BallTree, build_balltree, build_tree


class TestConstruction:
    def test_basic(self, rng):
        t = build_balltree(rng.normal(size=(100, 3)), leaf_size=10)
        t.validate()
        assert isinstance(t, BallTree)

    def test_radius_covers_points(self, rng):
        t = build_balltree(rng.normal(size=(100, 4)), leaf_size=8)
        for i in range(t.n_nodes):
            s, e = t.slice(i)
            d = np.sqrt(((t.points[s:e] - t.centroid[i]) ** 2).sum(axis=1))
            assert (d <= t.radius[i] + 1e-9).all()

    def test_sphere_bounds_true(self, rng):
        t = build_balltree(rng.normal(size=(60, 3)), leaf_size=6)
        leaves = list(t.leaves())
        for i in leaves[:4]:
            for j in leaves[:4]:
                mn = t.min_dist("sqeuclidean", i, t, j)
                mx = t.max_dist("sqeuclidean", i, t, j)
                si, ei = t.slice(i)
                sj, ej = t.slice(j)
                diff = t.points[si:ei, None, :] - t.points[None, sj:ej, :]
                d2 = (diff * diff).sum(axis=-1)
                assert mn <= d2.min() + 1e-9
                assert d2.max() <= mx + 1e-9

    def test_point_bounds_true(self, rng):
        t = build_balltree(rng.normal(size=(50, 3)), leaf_size=5)
        x = rng.normal(size=3)
        for i in t.leaves():
            s, e = t.slice(i)
            d2 = ((t.points[s:e] - x) ** 2).sum(axis=1)
            assert t.point_min_dist("sqeuclidean", x, i) <= d2.min() + 1e-9
            assert d2.max() <= t.point_max_dist("sqeuclidean", x, i) + 1e-9


class TestDispatcher:
    def test_build_tree_kinds(self, rng):
        X = rng.normal(size=(40, 3))
        assert build_tree("kd", X).kind == "kd"
        assert build_tree("ball", X).kind == "ball"
        assert build_tree("octree", X).kind == "octree"

    def test_unknown_kind(self, rng):
        with pytest.raises(ValueError, match="unknown tree kind"):
            build_tree("rtree", rng.normal(size=(10, 2)))


@pytest.fixture
def rng():
    return np.random.default_rng(7)
