"""Property tests: node distance bounds are *true* bounds."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.trees import geometry

BASES = ("sqeuclidean", "manhattan", "chebyshev")


def _dist(base, a, b):
    d = np.abs(a - b)
    if base == "sqeuclidean":
        return float((d * d).sum())
    if base == "manhattan":
        return float(d.sum())
    return float(d.max())


def cloud(n=6, d=3):
    return hnp.arrays(
        np.float64, (n, d),
        elements=st.floats(-50, 50, allow_nan=False, width=64),
    )


@settings(max_examples=60, deadline=None)
@given(A=cloud(), B=cloud())
@pytest.mark.parametrize("base", BASES)
def test_box_bounds_are_true_bounds(base, A, B):
    alo, ahi = A.min(axis=0), A.max(axis=0)
    blo, bhi = B.min(axis=0), B.max(axis=0)
    mn = geometry.box_min_dist(base, alo, ahi, blo, bhi)
    mx = geometry.box_max_dist(base, alo, ahi, blo, bhi)
    for a in A:
        for b in B:
            d = _dist(base, a, b)
            assert mn <= d + 1e-9
            assert d <= mx + 1e-9


@settings(max_examples=60, deadline=None)
@given(A=cloud(), x=hnp.arrays(np.float64, (3,),
                               elements=st.floats(-50, 50, allow_nan=False,
                                                  width=64)))
@pytest.mark.parametrize("base", BASES)
def test_point_box_bounds(base, A, x):
    lo, hi = A.min(axis=0), A.max(axis=0)
    mn = geometry.point_box_min_dist(base, x, lo, hi)
    mx = geometry.point_box_max_dist(base, x, lo, hi)
    for a in A:
        d = _dist(base, x, a)
        assert mn <= d + 1e-9
        assert d <= mx + 1e-9


def test_overlapping_boxes_min_zero():
    lo = np.zeros(3)
    hi = np.ones(3)
    assert geometry.box_min_dist("sqeuclidean", lo, hi, lo + 0.5, hi + 0.5) == 0.0


def test_touching_boxes_min_zero():
    lo = np.zeros(2)
    hi = np.ones(2)
    assert geometry.box_min_dist("manhattan", lo, hi, hi, hi + 1) == 0.0


def test_unknown_base_rejected():
    z = np.zeros(2)
    with pytest.raises(ValueError):
        geometry.box_min_dist("hamming", z, z, z, z)
    with pytest.raises(ValueError):
        geometry.box_max_dist("hamming", z, z, z, z)


@settings(max_examples=40, deadline=None)
@given(A=cloud(), B=cloud())
def test_sphere_bounds_are_true_bounds(A, B):
    ca, cb = A.mean(axis=0), B.mean(axis=0)
    ra = float(np.sqrt(((A - ca) ** 2).sum(axis=1)).max())
    rb = float(np.sqrt(((B - cb) ** 2).sum(axis=1)).max())
    mn = geometry.sphere_min_dist("sqeuclidean", ca, ra, cb, rb)
    mx = geometry.sphere_max_dist("sqeuclidean", ca, ra, cb, rb)
    for a in A:
        for b in B:
            d = _dist("sqeuclidean", a, b)
            assert mn <= d + 1e-6
            assert d <= mx + 1e-6


def test_sphere_non_euclidean_rejected():
    with pytest.raises(ValueError):
        geometry.sphere_min_dist("manhattan", np.zeros(2), 1.0, np.ones(2), 1.0)
