"""Incremental tree mutations: insert/delete/update with lazy refit.

The contract under test (ROADMAP item 3): after any batch mutation the
tree (a) still satisfies every structural invariant ``validate()``
checks, (b) stores exactly the mutated dataset (original-order
reconstruction through ``perm`` matches), (c) has *exact* per-node
metrics — tight boxes, centroids, weight sums — wherever it was refit,
(d) keeps conservative (never under-estimating) ball radii, and (e)
bumps the monotone version while snapshots keep the pre-mutation view.
"""

import numpy as np
import pytest

from repro.observe import collect
from repro.trees import build_tree
from repro.trees.node import REBUILD_LEAF_FACTOR

KINDS = ["kd", "octree", "ball"]


def reconstruct(tree):
    """Original-order dataset implied by the tree's permuted storage."""
    orig = np.empty_like(tree.points)
    orig[tree.perm] = tree.points
    w = None
    if tree.weights is not None:
        w = np.empty_like(tree.weights)
        w[tree.perm] = tree.weights
    return orig, w


def check_metrics(tree):
    """Every node's stored metrics match a recompute from its slice."""
    for i in range(tree.n_nodes):
        s, e = tree.slice(i)
        pts = tree.points[s:e]
        assert np.allclose(tree.lo[i], pts.min(axis=0))
        assert np.allclose(tree.hi[i], pts.max(axis=0))
        assert np.allclose(tree.centroid[i], pts.mean(axis=0))
        assert np.allclose(tree.center[i], 0.5 * (tree.lo[i] + tree.hi[i]))
        assert np.allclose(tree.diameter[i],
                           (tree.hi[i] - tree.lo[i]).max())
        if tree.weights is not None:
            w = tree.weights[s:e]
            assert np.allclose(tree.wsum[i], w.sum())
            assert np.allclose(
                tree.wcentroid[i], (w[:, None] * pts).sum(axis=0) / w.sum())
        if tree.kind == "ball":
            true_r = np.sqrt(((pts - tree.centroid[i]) ** 2).sum(1).max())
            assert tree.radius[i] >= true_r - 1e-12


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("weighted", [False, True])
class TestMutations:
    def make(self, rng, kind, weighted, n=400):
        X = rng.normal(size=(n, 3))
        w = rng.uniform(0.5, 2.0, n) if weighted else None
        return X, w, build_tree(kind, X, leaf_size=16, weights=w)

    def test_update_refits_exactly(self, rng, kind, weighted):
        X, w, tree = self.make(rng, kind, weighted)
        idx = rng.choice(400, 30, replace=False)
        pts = rng.normal(size=(30, 3)) * 0.5
        v = tree.update_batch(idx, pts)
        assert v == tree.version == 1
        tree.validate()
        check_metrics(tree)
        orig, worig = reconstruct(tree)
        X[idx] = pts
        assert np.allclose(orig, X)
        if weighted:
            assert np.allclose(worig, w)

    def test_update_weights_only(self, rng, kind, weighted):
        X, w, tree = self.make(rng, kind, weighted)
        if not weighted:
            with pytest.raises(ValueError):
                tree.update_batch([0], weights=[2.0])
            return
        tree.update_batch(np.arange(10), weights=np.full(10, 9.0))
        tree.validate()
        check_metrics(tree)
        _, worig = reconstruct(tree)
        w = w.copy()
        w[:10] = 9.0
        assert np.allclose(worig, w)

    def test_insert_appends_ids(self, rng, kind, weighted):
        X, w, tree = self.make(rng, kind, weighted)
        ins = rng.normal(size=(50, 3))
        ids = tree.insert_batch(
            ins, weights=np.full(50, 1.5) if weighted else None)
        assert np.array_equal(ids, np.arange(400, 450))
        assert tree.n == 450
        tree.validate()
        check_metrics(tree)
        orig, worig = reconstruct(tree)
        assert np.allclose(orig, np.concatenate([X, ins]))
        if weighted:
            assert np.allclose(worig, np.concatenate([w, np.full(50, 1.5)]))

    def test_delete_compacts_ids(self, rng, kind, weighted):
        X, w, tree = self.make(rng, kind, weighted)
        idx = rng.choice(400, 120, replace=False)
        tree.delete_batch(idx)
        assert tree.n == 280
        tree.validate()
        check_metrics(tree)
        orig, worig = reconstruct(tree)
        assert np.allclose(orig, np.delete(X, idx, axis=0))
        if weighted:
            assert np.allclose(worig, np.delete(w, idx))
        # no empty leaves survive a delete
        assert np.all((tree.end - tree.start)[tree.leaves()] > 0)

    def test_mixed_chain(self, kind, weighted, rng):
        X, w, tree = self.make(rng, kind, weighted)
        ref = X.copy()
        wref = None if w is None else w.copy()
        for step in range(4):
            n = len(ref)
            idx = rng.choice(n, max(1, n // 20), replace=False)
            pts = rng.normal(size=(idx.size, 3))
            tree.update_batch(idx, pts)
            ref[idx] = pts
            ins = rng.normal(size=(rng.integers(1, 25), 3))
            tree.insert_batch(
                ins, weights=None if wref is None else np.ones(len(ins)))
            ref = np.concatenate([ref, ins])
            if wref is not None:
                wref = np.concatenate([wref, np.ones(len(ins))])
            dele = rng.choice(len(ref), max(1, len(ref) // 25),
                              replace=False)
            tree.delete_batch(dele)
            ref = np.delete(ref, dele, axis=0)
            if wref is not None:
                wref = np.delete(wref, dele)
        tree.validate()
        check_metrics(tree)
        orig, worig = reconstruct(tree)
        assert np.allclose(orig, ref)
        if wref is not None:
            assert np.allclose(worig, wref)
        assert tree.version == 12


def test_snapshot_keeps_old_view(rng):
    X = rng.normal(size=(300, 3))
    tree = build_tree("kd", X, leaf_size=16)
    snap = tree.snapshot()
    before = (snap.points.copy(), snap.lo.copy(), snap.perm.copy())
    tree.update_batch(np.arange(50), rng.normal(size=(50, 3)) * 4)
    tree.insert_batch(rng.normal(size=(20, 3)))
    assert np.array_equal(snap.points, before[0])
    assert np.array_equal(snap.lo, before[1])
    assert np.array_equal(snap.perm, before[2])
    assert snap.version == 0 and tree.version == 2
    snap.validate()


def test_snapshot_mutation_leaves_source(rng):
    """The cache-refit pattern: mutating a snapshot is COW all the way."""
    X = rng.normal(size=(300, 3))
    tree = build_tree("kd", X, leaf_size=16)
    clone = tree.snapshot()
    clone.update_batch(np.arange(30), rng.normal(size=(30, 3)) * 3)
    clone.delete_batch(np.arange(10))
    assert tree.version == 0
    orig, _ = reconstruct(tree)
    assert np.allclose(orig, X)
    tree.validate()
    clone.validate()


def test_overfull_leaf_triggers_resplit(rng):
    X = rng.normal(size=(200, 3))
    tree = build_tree("kd", X, leaf_size=8)
    # Pile every insert into one spot so a single leaf overflows.
    target = X[0] + 1e-3 * rng.normal(size=(100, 3))
    with collect() as c:
        tree.insert_batch(target)
    assert c.get("tree.rebuild.subtree") + c.get("tree.rebuild.full") >= 1
    tree.validate()
    counts = (tree.end - tree.start)[tree.leaves()]
    assert counts.max() <= REBUILD_LEAF_FACTOR * tree.leaf_size


def test_far_move_triggers_rebuild(rng):
    X = rng.normal(size=(400, 3))
    tree = build_tree("kd", X, leaf_size=16)
    with collect() as c:
        tree.update_batch(np.arange(8), X[:8] + 500.0)
    assert (c.get("tree.rebuild.subtree") + c.get("tree.rebuild.full")) >= 1
    tree.validate()
    check_metrics(tree)


def test_emptied_leaf_forces_rebuild(rng):
    X = rng.normal(size=(300, 3))
    tree = build_tree("kd", X, leaf_size=8)
    # delete one whole leaf's points
    leaf = int(tree.leaves()[0])
    s, e = tree.slice(leaf)
    ids = tree.perm[s:e].copy()
    with collect() as c:
        tree.delete_batch(ids)
    assert c.get("tree.rebuild.subtree") + c.get("tree.rebuild.full") >= 1
    tree.validate()
    check_metrics(tree)


def test_delete_all_raises(rng):
    X = rng.normal(size=(50, 3))
    tree = build_tree("kd", X, leaf_size=8)
    with pytest.raises(ValueError):
        tree.delete_batch(np.arange(50))


def test_empty_batches_are_noops(rng):
    X = rng.normal(size=(50, 3))
    tree = build_tree("kd", X, leaf_size=8)
    assert tree.update_batch(np.empty(0, dtype=int)) == 0
    assert tree.insert_batch(np.empty((0, 3))).size == 0
    assert tree.delete_batch(np.empty(0, dtype=int)) == 0
    assert tree.version == 0


def test_refit_counters(rng):
    X = rng.normal(size=(300, 3))
    tree = build_tree("kd", X, leaf_size=16)
    with collect() as c:
        tree.update_batch(np.arange(5), X[:5] + 0.01)
    assert c.get("tree.refit.count") == 1
    assert c.get("tree.refit.points") == 5
    assert c.get("tree.refit.nodes") >= 1


@pytest.mark.parametrize("kind", KINDS)
def test_knn_equivalence_after_mutation(rng, kind):
    """The refit tree (reached through the cache's incremental path)
    answers nearest-neighbour queries identically to brute force over
    the mutated dataset."""
    from repro.dsl import Storage
    from repro.problems import knn

    X = rng.normal(size=(500, 3))
    R = Storage(X)
    Q = Storage(rng.normal(size=(100, 3)))
    knn(Q, R, k=3, tree=kind)  # build + register the live tree
    idx = rng.choice(500, 25, replace=False)
    R.update_batch(idx, rng.normal(size=(25, 3)) * 2)
    ids = R.insert_batch(rng.normal(size=(40, 3)))
    R.delete_batch(np.concatenate([idx[:10], ids[:10]]))
    with collect() as c:
        vt, it = knn(Q, R, k=3, tree=kind)
    assert c.get("cache.tree.refit") == 1
    vb, ib = knn(Q, R, k=3, backend="brute")
    assert np.array_equal(np.asarray(vt), np.asarray(vb))
