"""Unit and property tests for the kd-tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.trees import build_kdtree


def points_strategy(max_n=80, max_d=5):
    return hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, max_n), st.integers(1, max_d)),
        elements=st.floats(-100, 100, allow_nan=False, width=64),
    )


class TestConstruction:
    def test_basic(self, rng):
        t = build_kdtree(rng.normal(size=(100, 3)), leaf_size=10)
        assert t.n == 100 and t.dim == 3
        t.validate()

    def test_leaf_size_respected(self, rng):
        t = build_kdtree(rng.normal(size=(128, 2)), leaf_size=8)
        for leaf in t.leaves():
            assert t.count(leaf) <= 8

    def test_single_point(self):
        t = build_kdtree(np.array([[1.0, 2.0]]))
        assert t.n_nodes == 1 and t.is_leaf(0)

    def test_duplicate_points_terminate(self):
        pts = np.ones((50, 3))
        t = build_kdtree(pts, leaf_size=4)
        # All coincident: must not split forever; single oversized leaf is OK.
        assert t.is_leaf(0)
        t.validate()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_kdtree(np.empty((0, 3)))

    def test_bad_leaf_size_rejected(self, rng):
        with pytest.raises(ValueError):
            build_kdtree(rng.normal(size=(5, 2)), leaf_size=0)

    def test_perm_is_permutation(self, rng):
        t = build_kdtree(rng.normal(size=(60, 2)), leaf_size=5)
        assert sorted(t.perm.tolist()) == list(range(60))

    def test_points_match_perm(self, rng):
        X = rng.normal(size=(60, 2))
        t = build_kdtree(X, leaf_size=5)
        assert np.array_equal(t.points, X[t.perm])

    def test_median_split_balance(self, rng):
        t = build_kdtree(rng.normal(size=(256, 3)), leaf_size=2)
        # Median splits keep sibling sizes within 1 of each other.
        for i in range(t.n_nodes):
            kids = t.children(i)
            if len(kids) == 2:
                a, b = (t.count(int(k)) for k in kids)
                assert abs(a - b) <= 1

    def test_depth_logarithmic(self, rng):
        t = build_kdtree(rng.normal(size=(1024, 3)), leaf_size=1)
        assert t.depth() <= 14  # ~log2(1024) + slack

    def test_weights_propagate(self, rng):
        X = rng.normal(size=(40, 2))
        w = rng.uniform(1, 2, size=40)
        t = build_kdtree(X, leaf_size=8, weights=w)
        assert np.isclose(t.wsum[0], w.sum())
        expect = (w[:, None] * X).sum(0) / w.sum()
        assert np.allclose(t.wcentroid[0], expect)

    @settings(max_examples=30, deadline=None)
    @given(pts=points_strategy())
    def test_invariants_property(self, pts):
        t = build_kdtree(pts, leaf_size=4)
        t.validate()

    @settings(max_examples=30, deadline=None)
    @given(pts=points_strategy(max_n=40))
    def test_boxes_tight(self, pts):
        t = build_kdtree(pts, leaf_size=4)
        for i in range(t.n_nodes):
            s, e = t.slice(i)
            assert np.allclose(t.lo[i], t.points[s:e].min(axis=0))
            assert np.allclose(t.hi[i], t.points[s:e].max(axis=0))


class TestSlidingMidpoint:
    def test_invariants(self, rng):
        t = build_kdtree(rng.normal(size=(200, 3)), leaf_size=8,
                         split="midpoint")
        t.validate()

    def test_clustered_data(self, rng):
        A = rng.normal(size=(100, 2)) * 0.1
        B = rng.normal(size=(100, 2)) * 0.1 + 10.0
        t = build_kdtree(np.concatenate([A, B]), leaf_size=8,
                         split="midpoint")
        t.validate()
        # The first midpoint cut separates the clusters cleanly.
        kids = t.children(0)
        assert len(kids) == 2
        sizes = sorted(t.count(int(c)) for c in kids)
        assert sizes == [100, 100]

    def test_duplicates_terminate(self):
        t = build_kdtree(np.ones((40, 2)), leaf_size=4, split="midpoint")
        t.validate()

    def test_skewed_data_slides(self, rng):
        # 99 points at ~0 and one at 100: the plain midpoint would leave
        # an empty side repeatedly; sliding must keep both sides nonempty.
        X = np.concatenate([rng.normal(size=(99, 1)) * 0.01,
                            [[100.0]]])
        t = build_kdtree(X, leaf_size=4, split="midpoint")
        t.validate()
        for i in range(t.n_nodes):
            for c in t.children(i):
                assert t.count(int(c)) >= 1

    def test_unknown_strategy_rejected(self, rng):
        with pytest.raises(ValueError, match="split strategy"):
            build_kdtree(rng.normal(size=(10, 2)), split="random")

    def test_all_coincident_is_single_leaf(self):
        """Every width is zero: the root must stay a (possibly
        oversized) leaf instead of recursing forever."""
        t = build_kdtree(np.full((50, 3), 2.5), leaf_size=4,
                         split="midpoint")
        t.validate()
        assert t.n_nodes == 1
        assert t.is_leaf(0)

    def test_slide_branch_on_fp_rounded_cut(self):
        """With exact arithmetic ``lo < cut`` always holds when the
        width is positive, so the slide branch is reachable only via
        floating-point rounding: lo=1.0, hi=1.0+2^-52 gives a midpoint
        that rounds back down to 1.0 (ties-to-even), leaving the left
        side empty.  The slide must isolate at least one point per
        side."""
        eps = 2.0 ** -52
        X = np.array([[1.0]] * 6 + [[1.0 + eps]] * 2)
        t = build_kdtree(X, leaf_size=2, split="midpoint")
        t.validate()
        kids = t.children(0)
        assert len(kids) == 2
        sizes = sorted(t.count(int(c)) for c in kids)
        assert sizes[0] >= 1 and sum(sizes) == 8
        for i in range(t.n_nodes):
            for c in t.children(i):
                assert t.count(int(c)) >= 1

    def test_duplicate_coords_along_split_dim(self, rng):
        """Duplicates along the widest dimension: the cut lands between
        the two duplicate groups, and once a subtree's widest dimension
        collapses to zero width the next-widest takes over."""
        n = 64
        X = np.column_stack([
            np.repeat([0.0, 1.0], n // 2),
            rng.uniform(0.0, 0.05, size=n),
        ])
        t = build_kdtree(X, leaf_size=4, split="midpoint")
        t.validate()
        kids = t.children(0)
        assert len(kids) == 2
        assert sorted(t.count(int(c)) for c in kids) == [n // 2, n // 2]
        for i in range(t.n_nodes):
            for c in t.children(i):
                assert t.count(int(c)) >= 1

    def test_knn_agrees_across_strategies(self, rng):
        """Both strategies are exact spatial indexes: k-NN answers must
        be identical whichever one the compiler builds."""
        from repro.problems import knn

        Q = rng.uniform(0.0, 5.0, size=(120, 3))
        R = rng.uniform(0.0, 5.0, size=(150, 3))
        d_med, i_med = knn(Q, R, k=4, split="median", leaf_size=8)
        d_mid, i_mid = knn(Q, R, k=4, split="midpoint", leaf_size=8)
        assert np.array_equal(d_med, d_mid)
        assert np.array_equal(i_med, i_mid)

    def test_same_knn_results(self, rng):
        from repro.problems import knn

        X = rng.normal(size=(300, 3))
        d_med, _ = knn(X, k=3, fastmath=False)
        # knn always uses median (the execute option selects tree kind,
        # not split); compare the underlying traversal engines directly.
        from repro.baselines.brute import brute_knn
        from repro.traversal import single_tree_knn

        t_mid = build_kdtree(X, leaf_size=16, split="midpoint")
        inv = np.empty(300, dtype=np.int64)
        inv[t_mid.perm] = np.arange(300)
        d_mid, _ = single_tree_knn(X, t_mid, k=3, exclude_index=inv)
        assert np.allclose(d_med, d_mid)


class TestNodeAPI:
    def test_node_view(self, rng):
        X = rng.normal(size=(30, 2))
        t = build_kdtree(X, leaf_size=4)
        root = t.node(0)
        assert root.count == 30
        assert not root.is_leaf
        assert len(root.children()) == 2
        assert root.points.shape == (30, 2)
        assert sorted(root.indices.tolist()) == list(range(30))

    def test_centroid(self, rng):
        X = rng.normal(size=(30, 2))
        t = build_kdtree(X, leaf_size=4)
        assert np.allclose(t.node(0).centroid, X.mean(axis=0))

    def test_diameter_is_widest_span(self, rng):
        X = rng.normal(size=(30, 2))
        t = build_kdtree(X, leaf_size=4)
        assert np.isclose(t.node(0).diameter,
                          (X.max(axis=0) - X.min(axis=0)).max())


@pytest.fixture
def rng():
    return np.random.default_rng(5)
