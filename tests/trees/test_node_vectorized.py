"""Pin tests for the vectorised ArrayTree per-node statistics.

``ArrayTree.__init__`` computes centroids, weight sums and weighted
centroids with reduceat sweeps (leaf partition + bottom-up level plan)
instead of a per-node Python loop.  These tests pin the vectorised
results against the straightforward reference loop over node slices, on
weighted and unweighted trees across all three tree kinds, and pin the
``levels()`` / ``depth()`` machinery against recursive references.
"""

import numpy as np
import pytest
from numpy.testing import assert_allclose

from repro.trees import build_balltree, build_kdtree, build_octree
from repro.trees.node import level_propagation, tree_levels

BUILDERS = {
    "kd": build_kdtree,
    "ball": build_balltree,
    "octree": build_octree,
}


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(20260806)
    pts = rng.uniform(-3.0, 3.0, size=(257, 3))  # odd n: uneven slices
    w = rng.uniform(0.0, 2.0, size=257)
    w[rng.choice(257, size=20, replace=False)] = 0.0  # zero-weight points
    return pts, w


def _reference_stats(tree):
    """The pre-vectorisation per-node loop, verbatim semantics."""
    n_nodes = tree.n_nodes
    d = tree.dim
    centroid = np.empty((n_nodes, d))
    wsum = np.empty(n_nodes)
    wcentroid = np.empty((n_nodes, d))
    for i in range(n_nodes):
        s, e = int(tree.start[i]), int(tree.end[i])
        pts = tree.points[s:e]
        centroid[i] = pts.mean(axis=0)
        if tree.weights is not None:
            wi = tree.weights[s:e]
            wsum[i] = wi.sum()
            if wsum[i] > 0:
                wcentroid[i] = (wi[:, None] * pts).sum(axis=0) / wsum[i]
            else:
                wcentroid[i] = centroid[i]
    return centroid, wsum, wcentroid


def _reference_depth(tree, i=0):
    kids = tree.children(i)
    if len(kids) == 0:
        return 0
    return 1 + max(_reference_depth(tree, int(c)) for c in kids)


@pytest.mark.parametrize("kind", list(BUILDERS))
class TestVectorisedStats:
    def test_unweighted_centroids(self, data, kind):
        pts, _ = data
        tree = BUILDERS[kind](pts, leaf_size=8)
        ref_centroid, _, _ = _reference_stats(tree)
        assert_allclose(tree.centroid, ref_centroid, rtol=1e-12, atol=1e-12)

    def test_weighted_stats(self, data, kind):
        pts, w = data
        tree = BUILDERS[kind](pts, leaf_size=8, weights=w)
        ref_centroid, ref_wsum, ref_wcentroid = _reference_stats(tree)
        assert_allclose(tree.centroid, ref_centroid, rtol=1e-12, atol=1e-12)
        assert_allclose(tree.wsum, ref_wsum, rtol=1e-12, atol=1e-12)
        assert_allclose(tree.wcentroid, ref_wcentroid, rtol=1e-12, atol=1e-12)

    def test_all_zero_weights_fall_back_to_centroid(self, data, kind):
        pts, _ = data
        tree = BUILDERS[kind](pts, leaf_size=8, weights=np.zeros(len(pts)))
        assert_allclose(tree.wcentroid, tree.centroid, rtol=1e-12)
        assert np.all(tree.wsum == 0.0)

    def test_depth_matches_recursive_reference(self, data, kind):
        pts, _ = data
        tree = BUILDERS[kind](pts, leaf_size=8)
        assert tree.depth() == _reference_depth(tree)

    def test_levels_consistent_with_children(self, data, kind):
        pts, _ = data
        tree = BUILDERS[kind](pts, leaf_size=8)
        level = tree.levels()
        assert level[0] == 0
        for i in range(tree.n_nodes):
            for c in tree.children(i):
                assert level[int(c)] == level[i] + 1
        assert int(level.max()) == tree.depth()


class TestLevelMachinery:
    def test_tree_levels_single_node(self):
        level = tree_levels(np.array([0, 0]), np.empty(0, dtype=np.int64))
        assert level.tolist() == [0]

    def test_level_propagation_reduces_bottom_up(self, data):
        """Summing per-point ones through the plan must reproduce each
        node's point count — the invariant _node_sums relies on."""
        pts, _ = data
        tree = build_kdtree(pts, leaf_size=8)
        plan = level_propagation(tree.child_offset, tree.child_list,
                                 tree.levels())
        out = np.zeros(tree.n_nodes)
        leaves = np.flatnonzero(tree.is_leaf_arr)
        out[leaves] = (tree.end - tree.start)[leaves]
        for ids, kids, seg in plan:
            out[ids] = np.add.reduceat(out[kids], seg)
        assert np.array_equal(out, (tree.end - tree.start).astype(float))

    def test_leaf_only_tree_has_empty_plan(self):
        tree = build_kdtree(np.zeros((5, 2)), leaf_size=8)
        assert tree.n_nodes == 1
        plan = level_propagation(tree.child_offset, tree.child_list,
                                 tree.levels())
        assert plan == []
