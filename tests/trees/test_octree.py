"""Tests for the quadtree/octree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.trees import build_octree


class TestConstruction:
    def test_3d(self, rng):
        t = build_octree(rng.normal(size=(200, 3)), leaf_size=8)
        t.validate()
        assert t.kind == "octree"

    def test_2d_quadtree(self, rng):
        t = build_octree(rng.normal(size=(200, 2)), leaf_size=8)
        t.validate()
        for i in range(t.n_nodes):
            assert len(t.children(i)) <= 4

    def test_1d(self, rng):
        t = build_octree(rng.normal(size=(50, 1)), leaf_size=4)
        t.validate()
        for i in range(t.n_nodes):
            assert len(t.children(i)) <= 2

    def test_max_8_children(self, rng):
        t = build_octree(rng.normal(size=(500, 3)), leaf_size=4)
        for i in range(t.n_nodes):
            assert len(t.children(i)) <= 8

    def test_high_dim_rejected(self, rng):
        with pytest.raises(ValueError, match="3 dimensions"):
            build_octree(rng.normal(size=(10, 4)))

    def test_duplicates_terminate(self):
        t = build_octree(np.ones((40, 3)), leaf_size=4)
        t.validate()

    def test_leaf_size_respected_where_splittable(self, rng):
        t = build_octree(rng.normal(size=(256, 3)), leaf_size=8)
        for leaf in t.leaves():
            # Allow oversized leaves only for coincident points.
            if t.count(leaf) > 8:
                s, e = t.slice(leaf)
                assert np.allclose(t.points[s:e], t.points[s])

    def test_center_of_mass(self, rng):
        X = rng.normal(size=(100, 3))
        w = rng.uniform(1, 3, size=100)
        t = build_octree(X, leaf_size=8, weights=w)
        assert np.allclose(t.wcentroid[0], (w[:, None] * X).sum(0) / w.sum())

    @settings(max_examples=25, deadline=None)
    @given(pts=hnp.arrays(
        np.float64, st.tuples(st.integers(1, 60), st.integers(1, 3)),
        elements=st.floats(-20, 20, allow_nan=False, width=64)))
    def test_invariants_property(self, pts):
        t = build_octree(pts, leaf_size=4)
        t.validate()


@pytest.fixture
def rng():
    return np.random.default_rng(6)
