"""Tests for the Portal command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.data import save_csv

PROGRAM = """
Storage query("query.csv");
Storage reference("reference.csv");
PortalExpr nn;
nn.addLayer(FORALL, query);
nn.addLayer(ARGMIN, reference, EUCLIDEAN);
nn.execute();
Storage output = nn.getOutput();
"""


@pytest.fixture
def setup(tmp_path):
    rng = np.random.default_rng(0)
    prog = tmp_path / "nn.portal"
    prog.write_text(PROGRAM)
    q = tmp_path / "q.csv"
    r = tmp_path / "r.csv"
    save_csv(q, rng.normal(size=(50, 3)))
    save_csv(r, rng.normal(size=(60, 3)))
    return str(prog), [f"--bind=query.csv={q}", f"--bind=reference.csv={r}"]


class TestCli:
    def test_run(self, setup, capsys):
        prog, binds = setup
        assert main(["run", prog, *binds]) == 0
        out = capsys.readouterr().out
        assert "== nn ==" in out and "values" in out

    def test_run_with_options(self, setup, capsys):
        prog, binds = setup
        assert main(["run", prog, *binds, "--option", "fastmath=false",
                     "--option", "leaf_size=16"]) == 0

    def test_ir_stage(self, setup, capsys):
        prog, binds = setup
        assert main(["ir", prog, *binds, "--stage", "lowered"]) == 0
        out = capsys.readouterr().out
        assert "BaseCase" in out and "alloc storage0" in out

    def test_ir_disable_pass_and_verify(self, setup, capsys):
        prog, binds = setup
        assert main(["ir", prog, *binds, "--stage", "final",
                     "--disable-pass", "strength", "--disable-pass", "cse",
                     "--verify-ir"]) == 0
        out = capsys.readouterr().out
        # Strength reduction skipped: pow survives to the final stage.
        assert "pow(" in out

    def test_disable_pass_rejects_unknown(self, setup, capsys):
        prog, binds = setup
        with pytest.raises(SystemExit):
            main(["ir", prog, *binds, "--disable-pass", "nonsense"])

    def test_stats_reports_new_pass_timings(self, setup, capsys):
        prog, binds = setup
        assert main(["stats", prog, *binds, "--verify-ir"]) == 0
        out = capsys.readouterr().out
        for key in ("simplify", "cse", "dce"):
            assert key in out

    def test_ir_generated(self, setup, capsys):
        prog, binds = setup
        assert main(["ir", prog, *binds, "--generated"]) == 0
        assert "_pairwise" in capsys.readouterr().out

    def test_explain(self, setup, capsys):
        prog, binds = setup
        assert main(["explain", prog, *binds]) == 0
        out = capsys.readouterr().out
        assert "category:  pruning" in out
        assert "rule:" in out

    def test_parse_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.portal"
        bad.write_text("Var q $")
        assert main(["run", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent.portal"]) == 1

    def test_bad_option_format(self, setup):
        prog, binds = setup
        with pytest.raises(SystemExit):
            main(["run", prog, *binds, "--option", "nokey"])

    def test_bad_bind_format(self, setup):
        prog, _ = setup
        with pytest.raises(SystemExit):
            main(["run", prog, "--bind", "nopath"])


class TestCliStats:
    def test_stats(self, setup, capsys):
        prog, binds = setup
        assert main(["stats", prog, *binds]) == 0
        out = capsys.readouterr().out
        assert "== nn ==" in out
        assert "prune-rate:" in out
        assert "approximation-rate:" in out
        assert "IR passes:" in out

    def test_stats_json(self, setup, capsys):
        import json

        prog, binds = setup
        assert main(["stats", prog, *binds, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        stats = payload["programs"]["nn"]
        tr = stats["traversal"]
        assert tr["visited"] == (tr["pruned"] + tr["approximated"]
                                 + tr["recursions"] + tr["base_cases"])
        assert "flatten" in stats["pass_timings_ms"]
        assert payload["counters"]["compile.count"] == 1
        assert payload["counters"]["traversal.visited"] == tr["visited"]

    def test_stats_trace(self, setup, tmp_path, capsys):
        import json

        prog, binds = setup
        trace = tmp_path / "trace.jsonl"
        assert main(["stats", prog, *binds, "--trace", str(trace)]) == 0
        names = {json.loads(l)["name"]
                 for l in trace.read_text().splitlines()}
        assert "codegen" in names
        assert any(n.startswith("ir.pass.") for n in names)

    def test_stats_respects_options(self, setup, capsys):
        prog, binds = setup
        assert main(["stats", prog, *binds, "--option",
                     "backend=brute"]) == 0
        out = capsys.readouterr().out
        assert "backend: brute" in out


class TestTuner:
    def test_tune_returns_best(self, monkeypatch):
        import time

        from repro.util import tune_leaf_size

        # Fake clock: tune_leaf_size times run() via time.perf_counter,
        # so a stepped counter makes the ranking deterministic.
        now = [0.0]
        monkeypatch.setattr(time, "perf_counter", lambda: now[0])
        calls = []

        def run(leaf):
            calls.append(leaf)
            now[0] += 0.001 if leaf == 64 else 0.005

        res = tune_leaf_size(run, candidates=(32, 64), repeats=1)
        assert res.best == 64
        assert set(res.timings) == {32, 64}
        assert res.timings[64] == pytest.approx(0.001)

    def test_tune_validation(self):
        from repro.util import tune_leaf_size

        with pytest.raises(ValueError):
            tune_leaf_size(lambda leaf: None, candidates=())
        with pytest.raises(ValueError):
            tune_leaf_size(lambda leaf: None, candidates=(0,), repeats=1)

    def test_tune_on_real_problem(self):
        from repro.problems import knn
        from repro.util import tune_leaf_size

        rng = np.random.default_rng(1)
        Q = rng.normal(size=(300, 3))
        res = tune_leaf_size(lambda leaf: knn(Q, k=1, leaf_size=leaf),
                             candidates=(16, 128), repeats=1)
        assert res.best in (16, 128)
