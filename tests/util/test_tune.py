"""Tests for the leaf-size auto-tuner (paper section V-B).

Timing is driven by a fake clock so the tests are deterministic: each
``run`` call advances the clock by a scripted duration, and the tuner's
best-of-repeats / argmin logic is asserted against the script.
"""

import pytest

from repro.util import tune as tune_mod
from repro.util.tune import (
    DEFAULT_CANDIDATES, TuneResult, measure_candidates, tune_leaf_size,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def perf_counter(self):
        return self.now


@pytest.fixture
def clock(monkeypatch):
    clk = FakeClock()
    monkeypatch.setattr(tune_mod, "time", clk)
    return clk


class TestTuneLeafSize:
    def test_picks_argmin_of_best_of_repeats(self, clock):
        # leaf 16 is erratic (5.0 then 1.0): best-of must score it 1.0,
        # beating leaf 32's steady 2.0 — a mean or first-run policy
        # would pick 32 instead.
        script = {16: [5.0, 1.0], 32: [2.0, 2.0], 64: [3.0, 6.0]}
        calls = {leaf: iter(times) for leaf, times in script.items()}

        def run(leaf):
            clock.now += next(calls[leaf])

        result = tune_leaf_size(run, candidates=(16, 32, 64), repeats=2)
        assert result.best == 16
        assert result.timings == {16: 1.0, 32: 2.0, 64: 3.0}

    def test_repeats_run_count(self, clock):
        seen = []
        tune_leaf_size(lambda leaf: seen.append(leaf),
                       candidates=(8, 16), repeats=3)
        assert seen == [8, 8, 8, 16, 16, 16]

    def test_subsample_forwarded(self, clock):
        seen = []

        def run(leaf, sub):
            seen.append((leaf, sub))

        result = tune_leaf_size(run, candidates=(16, 32), repeats=1,
                                subsample=500)
        assert seen == [(16, 500), (32, 500)]
        assert isinstance(result, TuneResult)
        assert set(result.timings) == {16, 32}

    def test_without_subsample_run_gets_only_leaf(self, clock):
        def run(leaf, sub=None):
            assert sub is None

        tune_leaf_size(run, candidates=(16,), repeats=1)

    def test_default_candidates(self, clock):
        seen = set()
        tune_leaf_size(lambda leaf: seen.add(leaf), repeats=1)
        assert seen == set(DEFAULT_CANDIDATES)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError, match="candidate"):
            tune_leaf_size(lambda leaf: None, candidates=())

    def test_invalid_leaf_rejected(self):
        with pytest.raises(ValueError, match="leaf size"):
            tune_leaf_size(lambda leaf: None, candidates=(0,))

    def test_invalid_subsample_rejected(self):
        with pytest.raises(ValueError, match="subsample"):
            tune_leaf_size(lambda leaf, sub: None, candidates=(16,),
                           subsample=0)

    def test_repr_lists_timings(self, clock):
        script = iter([1.5, 0.5])

        def run(leaf):
            clock.now += next(script)

        result = tune_leaf_size(run, candidates=(16, 32), repeats=1)
        text = repr(result)
        assert "best=32" in text and "16:" in text

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            tune_leaf_size(lambda leaf: None, candidates=(16, 32),
                           repeats=0)

    def test_single_candidate_skips_timing(self):
        # Nothing to rank: the grid's only value wins without a single
        # measurement being spent.
        calls = []
        result = tune_leaf_size(calls.append, candidates=(48,))
        assert calls == []
        assert result.best == 48
        assert result.timings == {}

    def test_single_candidate_still_validates(self):
        with pytest.raises(ValueError, match="repeats"):
            tune_leaf_size(lambda leaf: None, candidates=(48,), repeats=0)

    def test_injected_clock_overrides_module_time(self):
        clk = FakeClock()
        script = {16: 4.0, 32: 1.0}

        def run(leaf):
            clk.now += script[leaf]

        result = tune_leaf_size(run, candidates=(16, 32), repeats=1,
                                clock=clk.perf_counter)
        assert result.best == 32
        assert result.timings == {16: 4.0, 32: 1.0}


class TestMeasureCandidates:
    def test_times_every_candidate(self):
        clk = FakeClock()
        cost = {"a": 3.0, "b": 1.0, "c": 2.0}

        def run(cand):
            clk.now += cost[cand]

        timings = measure_candidates(run, ["a", "b", "c"], repeats=1,
                                     clock=clk.perf_counter)
        assert timings == cost

    def test_best_of_repeats(self):
        clk = FakeClock()
        script = iter([5.0, 1.0])

        def run(cand):
            clk.now += next(script)

        timings = measure_candidates(run, ["x"], repeats=2,
                                     clock=clk.perf_counter)
        assert timings == {"x": 1.0}

    def test_budget_skips_remaining_candidates(self):
        clk = FakeClock()

        def run(cand):
            clk.now += 4.0

        timings = measure_candidates(run, ["a", "b", "c"], repeats=1,
                                     clock=clk.perf_counter, budget_s=5.0)
        # 'a' (4s) fits; measuring 'b' crosses 8s >= 5s, so 'c' is cut.
        assert list(timings) == ["a", "b"]

    def test_first_candidate_always_measured(self):
        clk = FakeClock()

        def run(cand):
            clk.now += 100.0

        timings = measure_candidates(run, ["a", "b"], repeats=1,
                                     clock=clk.perf_counter, budget_s=0.0)
        assert list(timings) == ["a"]

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError, match="candidate"):
            measure_candidates(lambda c: None, [])

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            measure_candidates(lambda c: None, ["a"], repeats=0)
