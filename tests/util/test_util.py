"""Tests for LOC counting and timing helpers."""

import time

import pytest

from repro.util import Timer, best_of, count_loc, count_object_loc, timed


class TestLoc:
    def test_counts_code_lines(self):
        src = "a = 1\n\nb = 2\n"
        assert count_loc(src) == 2

    def test_skips_comments(self):
        src = "# comment\na = 1\n// c++ comment\n"
        assert count_loc(src) == 1

    def test_skips_docstrings(self):
        src = '"""\nmodule doc\n"""\nx = 1\n'
        assert count_loc(src) == 1

    def test_single_line_docstring(self):
        src = '"""one line."""\nx = 1\n'
        assert count_loc(src) == 1

    def test_object_loc(self):
        def sample():
            a = 1
            return a

        assert count_object_loc(sample) == 3

    def test_paper_knn_is_13_lines_or_fewer(self):
        """The paper reports k-NN in 13 lines of Portal; our equivalent
        textual program must not exceed that."""
        program = """
        Storage query("query_file.csv");
        Storage reference("reference_file.csv");
        Var q;
        Var r;
        Expr EuclidDist = sqrt(pow((q - r), 2));
        PortalExpr expr;
        expr.addLayer(FORALL, q, query);
        expr.addLayer((KARGMIN, 5), r, reference, EuclidDist);
        expr.execute();
        Storage output = expr.getOutput();
        """
        assert count_loc(program) <= 13


class TestTiming:
    def test_timer_accumulates(self, monkeypatch):
        # Fake clock: the timer reads time.perf_counter, so stepping a
        # counter makes the laps exact instead of sleep-and-hope.
        now = [0.0]
        monkeypatch.setattr(time, "perf_counter", lambda: now[0])
        t = Timer()
        with t.measure():
            now[0] += 0.01
        with t.measure():
            now[0] += 0.01
        assert t.elapsed == pytest.approx(0.02)
        assert t.laps == [pytest.approx(0.01), pytest.approx(0.01)]

    def test_timed_sink(self):
        sink = {}
        with timed("x", sink=sink):
            pass
        assert "x" in sink and sink["x"] >= 0

    def test_timed_box(self):
        with timed() as box:
            pass
        assert "seconds" in box

    def test_best_of(self):
        calls = []
        t = best_of(lambda: calls.append(1), repeats=3)
        assert len(calls) == 3 and t >= 0
